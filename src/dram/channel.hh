/**
 * @file
 * Command-level timing model of one LPDDR5X channel: per-bank row
 * buffer state (open row, ready time) and shared command/data bus
 * occupancy. Requests are resolved synchronously into completion
 * ticks, which makes the model deterministic and directly testable:
 * row hits are cheaper than misses, bank conflicts serialize on the
 * bank, and independent banks overlap but share the data bus.
 */

#ifndef LONGSIGHT_DRAM_CHANNEL_HH
#define LONGSIGHT_DRAM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "dram/lpddr_config.hh"
#include "util/units.hh"

namespace longsight {

/**
 * Statistics of one channel's activity.
 */
struct ChannelStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    uint64_t bytesTransferred = 0;
    uint64_t refreshes = 0;

    double rowHitRate() const
    {
        const uint64_t total = rowHits + rowMisses;
        return total ? static_cast<double>(rowHits) / total : 0.0;
    }
};

/**
 * One LPDDR5X channel with open-page row-buffer policy.
 */
class DramChannel
{
  public:
    explicit DramChannel(const LpddrTimings &timings);

    const LpddrTimings &timings() const { return timings_; }

    /**
     * Issue a read of `bytes` from (bank, row) no earlier than
     * `earliest`; returns the tick at which the last data beat
     * arrives. Multi-burst reads occupy the data bus back to back.
     */
    Tick read(Tick earliest, uint32_t bank, uint64_t row, uint32_t bytes);

    /** Issue a write; returns the tick the write completes at the bank. */
    Tick write(Tick earliest, uint32_t bank, uint64_t row, uint32_t bytes);

    /**
     * Tick at which the bank could accept a column command for `row`
     * (activating first if needed), without issuing anything.
     */
    Tick probeReady(Tick earliest, uint32_t bank, uint64_t row) const;

    /** First tick at which the data bus is free. */
    Tick dataBusFree() const { return busFree_; }

    const ChannelStats &stats() const { return stats_; }
    void resetStats() { stats_ = ChannelStats{}; }

  private:
    struct BankState
    {
        bool rowOpen = false;
        uint64_t openRow = 0;
        Tick readyAt = 0; //!< bank free for the next command
    };

    /** Open `row` in `bank` if needed; returns column-command-ready tick. */
    Tick prepareRow(Tick earliest, BankState &bank, uint64_t row,
                    bool count_stats);

    /**
     * Stall `t` past any all-bank refresh window it lands in and
     * advance the refresh schedule (an all-bank refresh fires every
     * tREFI and blocks the channel for tRFCab).
     */
    Tick applyRefresh(Tick t);

    LpddrTimings timings_;
    std::vector<BankState> banks_;
    Tick busFree_ = 0;
    Tick nextRefresh_;
    ChannelStats stats_;
};

} // namespace longsight

#endif // LONGSIGHT_DRAM_CHANNEL_HH

/**
 * @file
 * LPDDR5X timing and geometry parameters for the DReX memory model
 * (§7.1: 8 packages x 8 channels x 128 banks, 512 GB total).
 * Values follow the LPDDR5X-8533 speed grade the paper's bandwidth
 * numbers imply: 64 channels x ~17.1 GB/s ≈ 1.1 TB/s NMA-visible
 * bandwidth (Table 2).
 */

#ifndef LONGSIGHT_DRAM_LPDDR_CONFIG_HH
#define LONGSIGHT_DRAM_LPDDR_CONFIG_HH

#include <cstdint>

#include "util/units.hh"

namespace longsight {

/**
 * Timing/geometry of one LPDDR5X channel.
 */
struct LpddrTimings
{
    // Geometry.
    uint32_t banksPerChannel = 128;  //!< 4 dies x 32 banks (§7.1)
    uint32_t rowBytes = 2048;        //!< row (page) size per bank
    uint32_t burstBytes = 32;        //!< BL16 on a x16 channel
    uint64_t channelCapacity = 8ULL * kGiB; //!< 512 GB / 64 channels

    // Core timings.
    Tick tRCD = fromNanoseconds(18.0); //!< activate -> column command
    Tick tRP = fromNanoseconds(18.0);  //!< precharge
    Tick tRL = fromNanoseconds(14.0);  //!< read (CAS) latency
    Tick tWL = fromNanoseconds(8.0);   //!< write latency
    Tick tBurst = fromNanoseconds(1.875); //!< 32 B at 8533 MT/s x16
    Tick tCmd = fromNanoseconds(0.9375);  //!< command-bus slot

    // Refresh: all-bank refresh every tREFI blocks the channel for
    // tRFCab (LPDDR5X 16 Gb die figures).
    bool refreshEnabled = true;
    Tick tREFI = fromNanoseconds(3906.0);
    Tick tRFCab = fromNanoseconds(180.0);

    /** Peak data bandwidth in bytes/second. */
    double peakBandwidth() const
    {
        return static_cast<double>(burstBytes) / toSeconds(tBurst);
    }

    /** Rows per bank implied by the capacity and geometry. */
    uint64_t rowsPerBank() const
    {
        return channelCapacity / (static_cast<uint64_t>(banksPerChannel) *
                                  rowBytes);
    }
};

/**
 * DReX-scale geometry constants (§7.1).
 */
struct DrexGeometry
{
    uint32_t numPackages = 8;
    uint32_t channelsPerPackage = 8;
    uint32_t banksPerChannel = 128;
    uint32_t pfusPerBank = 1; //!< one PIM filtering unit per bank

    uint32_t totalChannels() const
    {
        return numPackages * channelsPerPackage;
    }
    uint32_t totalBanks() const
    {
        return totalChannels() * banksPerChannel;
    }
    /** 8 x 8 x 128 = 8192 PFUs (Table 2). */
    uint32_t totalPfus() const { return totalBanks() * pfusPerBank; }
};

} // namespace longsight

#endif // LONGSIGHT_DRAM_LPDDR_CONFIG_HH

/**
 * @file
 * Transformer model shape descriptions. Encodes Table 1 of the paper
 * (Llama-3-1B and Llama-3-8B, both GQA with 32 query / 8 KV heads)
 * plus the derived byte-count helpers the performance models need
 * (KV-cache footprint per token, weight footprint, FLOP counts for
 * QKV/attention/FFN at decode time).
 */

#ifndef LONGSIGHT_MODEL_MODEL_CONFIG_HH
#define LONGSIGHT_MODEL_MODEL_CONFIG_HH

#include <cstdint>
#include <string>

namespace longsight {

/**
 * Static shape of a decoder-only transformer (Table 1).
 */
struct ModelConfig
{
    std::string name;
    uint32_t numLayers;
    uint32_t numQueryHeads;
    uint32_t numKvHeads;
    uint32_t headDim;
    uint32_t hiddenDim;   //!< model (embedding) dimension
    uint32_t ffnDim;      //!< intermediate dimension of the gated FFN
    uint32_t vocabSize;
    uint32_t bytesPerValue = 2; //!< BF16 activations and weights

    /** Queries sharing one KV head under GQA. */
    uint32_t groupSize() const { return numQueryHeads / numKvHeads; }

    /** KV-cache bytes appended per token across all layers. */
    uint64_t kvBytesPerToken() const;

    /** KV-cache bytes for one (layer, KV head) at a context length. */
    uint64_t kvBytesPerHead(uint64_t context_len) const;

    /** Total parameter bytes (projections + FFN + embeddings). */
    uint64_t weightBytes() const;

    /** Decode-step FLOPs excluding attention over context. */
    uint64_t decodeFlopsPerTokenNoAttn() const;

    /**
     * Decode-step attention FLOPs for one user at a context length
     * (QK^T + SV across all layers and query heads).
     */
    uint64_t attentionFlopsPerToken(uint64_t context_len) const;

    /** Number of independent KV databases per user (layers x KV heads). */
    uint32_t kvDatabasesPerUser() const { return numLayers * numKvHeads; }

    /** Llama-3.2-1B shape per Table 1 (head dim 64, 16 layers). */
    static ModelConfig llama3_1b();

    /** Llama-3-8B shape per Table 1 (head dim 128, 32 layers). */
    static ModelConfig llama3_8b();
};

} // namespace longsight

#endif // LONGSIGHT_MODEL_MODEL_CONFIG_HH

#include "model/model_config.hh"

namespace longsight {

uint64_t
ModelConfig::kvBytesPerToken() const
{
    // K and V, one headDim vector each per KV head per layer.
    return uint64_t{2} * numKvHeads * headDim * bytesPerValue * numLayers;
}

uint64_t
ModelConfig::kvBytesPerHead(uint64_t context_len) const
{
    return uint64_t{2} * headDim * bytesPerValue * context_len;
}

uint64_t
ModelConfig::weightBytes() const
{
    const uint64_t d = hiddenDim;
    const uint64_t qkv = d * (numQueryHeads * headDim) +
        2 * d * (numKvHeads * headDim);
    const uint64_t out_proj = (numQueryHeads * headDim) * d;
    const uint64_t ffn = 3 * d * ffnDim; // gate, up, down projections
    const uint64_t per_layer = qkv + out_proj + ffn;
    const uint64_t embed = uint64_t{2} * vocabSize * d; // in + lm head
    return (per_layer * numLayers + embed) * bytesPerValue;
}

uint64_t
ModelConfig::decodeFlopsPerTokenNoAttn() const
{
    const uint64_t d = hiddenDim;
    const uint64_t qkv = 2 * (d * (numQueryHeads * headDim) +
                              2 * d * (numKvHeads * headDim));
    const uint64_t out_proj = 2 * (numQueryHeads * headDim) * d;
    const uint64_t ffn = 2 * 3 * d * ffnDim;
    const uint64_t lm_head = 2 * static_cast<uint64_t>(vocabSize) * d;
    return (qkv + out_proj + ffn) * numLayers + lm_head;
}

uint64_t
ModelConfig::attentionFlopsPerToken(uint64_t context_len) const
{
    // Per query head: QK^T (2*d*L) + SV (2*d*L).
    const uint64_t per_head = 4 * uint64_t{headDim} * context_len;
    return per_head * numQueryHeads * numLayers;
}

ModelConfig
ModelConfig::llama3_1b()
{
    ModelConfig c;
    c.name = "Llama-3-1B";
    c.numLayers = 16;
    c.numQueryHeads = 32;
    c.numKvHeads = 8;
    c.headDim = 64;
    c.hiddenDim = 2048;
    c.ffnDim = 8192;
    c.vocabSize = 128256;
    return c;
}

ModelConfig
ModelConfig::llama3_8b()
{
    ModelConfig c;
    c.name = "Llama-3-8B";
    c.numLayers = 32;
    c.numQueryHeads = 32;
    c.numKvHeads = 8;
    c.headDim = 128;
    c.hiddenDim = 4096;
    c.ffnDim = 14336;
    c.vocabSize = 128256;
    return c;
}

} // namespace longsight

#include "model/decoder.hh"

#include <cmath>

#include "core/attention.hh"
#include "tensor/linalg.hh"
#include "util/logging.hh"

namespace longsight {

namespace {

/** Fan-in-scaled Gaussian weight matrix (rows x cols). */
Matrix
randomWeights(size_t rows, size_t cols, Rng &rng)
{
    Matrix w(rows, cols, rng.gaussianVec(rows * cols));
    const float scale = 1.0f / std::sqrt(static_cast<float>(cols));
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] *= scale;
    return w;
}

float
silu(float x)
{
    return x / (1.0f + std::exp(-x));
}

} // namespace

std::vector<float>
rmsNorm(const std::vector<float> &x)
{
    double ms = 0.0;
    for (float v : x)
        ms += static_cast<double>(v) * v;
    ms = std::sqrt(ms / static_cast<double>(x.size()) + 1e-6);
    std::vector<float> out(x.size());
    const float inv = static_cast<float>(1.0 / ms);
    for (size_t i = 0; i < x.size(); ++i)
        out[i] = x[i] * inv;
    return out;
}

DecoderLayer::DecoderLayer(const DecoderConfig &cfg, Rng &rng)
    : cfg_(cfg), rope_(cfg.headDim, cfg.ropeTheta),
      wq_(randomWeights(cfg.numQueryHeads * cfg.headDim, cfg.hiddenDim,
                        rng)),
      wk_(randomWeights(cfg.numKvHeads * cfg.headDim, cfg.hiddenDim, rng)),
      wv_(randomWeights(cfg.numKvHeads * cfg.headDim, cfg.hiddenDim, rng)),
      wo_(randomWeights(cfg.hiddenDim, cfg.numQueryHeads * cfg.headDim,
                        rng)),
      wGate_(randomWeights(cfg.ffnDim, cfg.hiddenDim, rng)),
      wUp_(randomWeights(cfg.ffnDim, cfg.hiddenDim, rng)),
      wDown_(randomWeights(cfg.hiddenDim, cfg.ffnDim, rng))
{
    LS_ASSERT(cfg.numQueryHeads % cfg.numKvHeads == 0,
              "GQA grouping must divide evenly");
}

std::vector<float>
DecoderLayer::project(const Matrix &w, const std::vector<float> &x) const
{
    return gemv(w, x);
}

std::vector<float>
DecoderLayer::forward(const std::vector<float> &x, uint64_t position,
                      std::vector<KvCache> &caches, AttentionMode mode,
                      const MultiHeadLongSight *hybrid) const
{
    LS_ASSERT(x.size() == cfg_.hiddenDim, "hidden dim mismatch");
    LS_ASSERT(caches.size() == cfg_.numKvHeads, "cache count mismatch");

    const uint32_t d = cfg_.headDim;
    const std::vector<float> h = rmsNorm(x);

    // QKV projections, split into heads, RoPE on Q and K.
    const std::vector<float> q_flat = project(wq_, h);
    const std::vector<float> k_flat = project(wk_, h);
    const std::vector<float> v_flat = project(wv_, h);

    Matrix queries(cfg_.numQueryHeads, d);
    for (uint32_t qh = 0; qh < cfg_.numQueryHeads; ++qh) {
        std::vector<float> qv(q_flat.begin() + qh * d,
                              q_flat.begin() + (qh + 1) * d);
        rope_.apply(qv.data(), position);
        queries.setRow(qh, qv.data());
    }
    for (uint32_t kh = 0; kh < cfg_.numKvHeads; ++kh) {
        std::vector<float> kv(k_flat.begin() + kh * d,
                              k_flat.begin() + (kh + 1) * d);
        rope_.apply(kv.data(), position);
        const std::vector<float> vv(v_flat.begin() + kh * d,
                                    v_flat.begin() + (kh + 1) * d);
        caches[kh].append(kv, vv);
    }

    // Attention per query head: dense reference or the hybrid module.
    std::vector<float> attn_out(cfg_.numQueryHeads * d);
    if (mode == AttentionMode::LongSight) {
        LS_ASSERT(hybrid != nullptr, "LongSight mode needs the module");
        const LayerAttentionResult r = hybrid->compute(queries, caches);
        for (uint32_t qh = 0; qh < cfg_.numQueryHeads; ++qh)
            for (uint32_t i = 0; i < d; ++i)
                attn_out[qh * d + i] = r.outputs(qh, i);
    } else {
        const float scale = 1.0f / std::sqrt(static_cast<float>(d));
        const uint32_t group = cfg_.numQueryHeads / cfg_.numKvHeads;
        for (uint32_t qh = 0; qh < cfg_.numQueryHeads; ++qh) {
            const KvCache &cache = caches[qh / group];
            const AttentionResult r = denseAttention(
                queries.row(qh), cache.keys(), cache.values(), scale);
            for (uint32_t i = 0; i < d; ++i)
                attn_out[qh * d + i] = r.output[i];
        }
    }

    // Output projection + residual.
    std::vector<float> y = project(wo_, attn_out);
    for (size_t i = 0; i < y.size(); ++i)
        y[i] += x[i];

    // SiLU-gated FFN + residual.
    const std::vector<float> h2 = rmsNorm(y);
    const std::vector<float> gate = project(wGate_, h2);
    const std::vector<float> up = project(wUp_, h2);
    std::vector<float> act(cfg_.ffnDim);
    for (uint32_t i = 0; i < cfg_.ffnDim; ++i)
        act[i] = silu(gate[i]) * up[i];
    const std::vector<float> down = project(wDown_, act);
    for (size_t i = 0; i < y.size(); ++i)
        y[i] += down[i];
    return y;
}

SyntheticDecoder::SyntheticDecoder(const DecoderConfig &cfg,
                                   AttentionMode mode,
                                   const LongSightConfig &hybrid)
    : cfg_(cfg), mode_(mode)
{
    Rng rng(cfg.seed);
    layers_.reserve(cfg.numLayers);
    caches_.resize(cfg.numLayers);
    for (uint32_t l = 0; l < cfg.numLayers; ++l) {
        layers_.emplace_back(cfg, rng);
        for (uint32_t h = 0; h < cfg.numKvHeads; ++h)
            caches_[l].emplace_back(cfg.headDim);
    }
    if (mode == AttentionMode::LongSight)
        hybrid_ = std::make_unique<MultiHeadLongSight>(
            hybrid, cfg.numQueryHeads, cfg.numKvHeads, cfg.headDim);
}

size_t
SyntheticDecoder::contextLength() const
{
    return caches_.front().front().size();
}

std::vector<float>
SyntheticDecoder::step(const std::vector<float> &embedding)
{
    LS_ASSERT(embedding.size() == cfg_.hiddenDim,
              "embedding dim mismatch");
    std::vector<float> x = embedding;
    for (uint32_t l = 0; l < cfg_.numLayers; ++l)
        x = layers_[l].forward(x, position_, caches_[l], mode_,
                               hybrid_.get());
    ++position_;
    return x;
}

std::vector<KvCache> &
SyntheticDecoder::layerCaches(uint32_t layer)
{
    LS_ASSERT(layer < caches_.size(), "layer out of range");
    return caches_[layer];
}

MultiHeadLongSight &
SyntheticDecoder::hybridAttention()
{
    LS_ASSERT(hybrid_ != nullptr, "not in LongSight mode");
    return *hybrid_;
}

} // namespace longsight

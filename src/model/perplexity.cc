#include "model/perplexity.hh"

#include <cmath>

#include "util/logging.hh"

namespace longsight {

void
PerplexityProxy::record(const std::vector<float> &dense_probs,
                        const std::vector<uint32_t> &attended,
                        const std::vector<float> &dense_out,
                        const std::vector<float> &sparse_out)
{
    double retained = 0.0;
    for (uint32_t idx : attended) {
        LS_ASSERT(idx < dense_probs.size(),
                  "attended index ", idx, " beyond context ",
                  dense_probs.size());
        retained += dense_probs[idx];
    }
    // Clamp: fp accumulation can nudge a full cover slightly past 1.
    lostMass_.add(std::max(0.0, 1.0 - retained));

    if (!dense_out.empty()) {
        LS_ASSERT(dense_out.size() == sparse_out.size(),
                  "output size mismatch in perplexity record");
        double err = 0.0, ref = 0.0;
        for (size_t i = 0; i < dense_out.size(); ++i) {
            const double d =
                static_cast<double>(sparse_out[i]) - dense_out[i];
            err += d * d;
            ref += static_cast<double>(dense_out[i]) * dense_out[i];
        }
        outputError_.add(ref > 0 ? std::sqrt(err / ref) : 0.0);
    }
}

void
PerplexityProxy::recordLostMass(double lost_mass)
{
    lostMass_.add(lost_mass);
}

double
PerplexityProxy::relPplIncreasePct(double kappa) const
{
    return 100.0 * (std::exp(kappa * meanLostMass()) - 1.0);
}

void
PerplexityProxy::merge(const PerplexityProxy &other)
{
    lostMass_.merge(other.lostMass_);
    outputError_.merge(other.outputError_);
}

} // namespace longsight

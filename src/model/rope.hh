/**
 * @file
 * Rotary positional embedding (RoPE) in the Llama "half-split"
 * convention: dimension pairs (i, i + d/2) are rotated by an angle
 * position * theta^(-2i/d). RoPE matters to LongSight because it is
 * applied *after* the key/query projections, which is why the ITQ
 * rotation cannot be fused into the projection weights (§5.4) and why
 * key sign statistics vary with position.
 */

#ifndef LONGSIGHT_MODEL_ROPE_HH
#define LONGSIGHT_MODEL_ROPE_HH

#include <cstdint>
#include <vector>

namespace longsight {

/**
 * Precomputed RoPE angle tables for one head dimension.
 */
class Rope
{
  public:
    /**
     * @param head_dim even head dimension
     * @param theta_base frequency base (Llama-3 uses 500000)
     */
    explicit Rope(uint32_t head_dim, double theta_base = 500000.0);

    /** Rotate v (length headDim) in place for the given position. */
    void apply(float *v, uint64_t position) const;

    /** Rotated copy. */
    std::vector<float> rotated(const std::vector<float> &v,
                               uint64_t position) const;

    uint32_t headDim() const { return headDim_; }

  private:
    uint32_t headDim_;
    std::vector<double> invFreq_; //!< headDim/2 inverse frequencies
};

} // namespace longsight

#endif // LONGSIGHT_MODEL_ROPE_HH

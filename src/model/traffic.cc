#include "model/traffic.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace longsight {

namespace {

/** Lognormal draw clamped to [lo, hi]. */
double
lognormal(Rng &rng, double log_mean, double log_sigma, double lo,
          double hi)
{
    const double x = std::exp(log_mean + log_sigma * rng.gaussian());
    return std::min(hi, std::max(lo, x));
}

/**
 * Instantaneous diurnal rate multiplier at time t: a sinusoid with
 * the configured peak-to-trough ratio and unit mean, so the trace's
 * long-run offered load matches arrivalsPerSec.
 */
double
diurnalShape(Tick t, Tick period, double peak_to_trough)
{
    const double a =
        (peak_to_trough - 1.0) / (peak_to_trough + 1.0); // in [0, 1)
    const double phase = 2.0 * M_PI * toSeconds(t % period) /
        toSeconds(period);
    return 1.0 + a * std::sin(phase);
}

} // namespace

std::vector<ServingRequest>
generateTraffic(const TrafficConfig &cfg)
{
    LS_ASSERT(cfg.requests > 0, "empty traffic trace");
    LS_ASSERT(cfg.arrivalsPerSec > 0.0, "nonpositive offered rate");
    LS_ASSERT(cfg.promptMin <= cfg.promptMax &&
                  cfg.outputMin <= cfg.outputMax,
              "inverted size bounds");
    if (cfg.process == ArrivalProcess::Diurnal) {
        LS_ASSERT(cfg.diurnalPeakToTrough >= 1.0,
                  "peak/trough ratio must be >= 1");
        LS_ASSERT(cfg.diurnalPeriod > 0, "degenerate diurnal period");
    }

    Rng rng(cfg.seed);
    std::vector<ServingRequest> trace;
    trace.reserve(cfg.requests);

    // Lewis thinning: candidate gaps at the peak rate, accepted with
    // probability rate(t)/peak. For Poisson the shape is constant 1
    // and every candidate is accepted, so both processes share one
    // (deterministic) sampling loop.
    const double peak_shape = cfg.process == ArrivalProcess::Diurnal
        ? 2.0 * cfg.diurnalPeakToTrough / (cfg.diurnalPeakToTrough + 1.0)
        : 1.0;
    const double peak_rate = cfg.arrivalsPerSec * peak_shape;
    Tick now = 0;
    while (trace.size() < cfg.requests) {
        const double gap_s = -std::log(1.0 - rng.uniform()) / peak_rate;
        now += static_cast<Tick>(gap_s * 1e12 + 0.5);
        if (cfg.process == ArrivalProcess::Diurnal) {
            const double accept = diurnalShape(now, cfg.diurnalPeriod,
                                               cfg.diurnalPeakToTrough) /
                peak_shape;
            if (rng.uniform() >= accept)
                continue;
        }
        ServingRequest r;
        r.id = static_cast<uint32_t>(trace.size());
        r.arrival = now;
        r.promptLen = static_cast<uint64_t>(
            lognormal(rng, cfg.promptLogMean, cfg.promptLogSigma,
                      static_cast<double>(cfg.promptMin),
                      static_cast<double>(cfg.promptMax)));
        r.outputTokens = static_cast<uint32_t>(
            lognormal(rng, cfg.outputLogMean, cfg.outputLogSigma,
                      static_cast<double>(cfg.outputMin),
                      static_cast<double>(cfg.outputMax)));
        r.priority = rng.uniform() < cfg.interactiveFraction
            ? Priority::Interactive
            : Priority::Batch;
        trace.push_back(r);
    }
    return trace;
}

} // namespace longsight

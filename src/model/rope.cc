#include "model/rope.hh"

#include <cmath>

#include "util/logging.hh"

namespace longsight {

Rope::Rope(uint32_t head_dim, double theta_base) : headDim_(head_dim)
{
    LS_ASSERT(head_dim % 2 == 0, "RoPE requires an even head dim, got ",
              head_dim);
    const uint32_t half = head_dim / 2;
    invFreq_.resize(half);
    for (uint32_t i = 0; i < half; ++i)
        invFreq_[i] = 1.0 /
            std::pow(theta_base, (2.0 * i) / static_cast<double>(head_dim));
}

void
Rope::apply(float *v, uint64_t position) const
{
    const uint32_t half = headDim_ / 2;
    for (uint32_t i = 0; i < half; ++i) {
        const double angle = static_cast<double>(position) * invFreq_[i];
        const float c = static_cast<float>(std::cos(angle));
        const float s = static_cast<float>(std::sin(angle));
        const float lo = v[i];
        const float hi = v[i + half];
        v[i] = lo * c - hi * s;
        v[i + half] = lo * s + hi * c;
    }
}

std::vector<float>
Rope::rotated(const std::vector<float> &v, uint64_t position) const
{
    LS_ASSERT(v.size() == headDim_, "RoPE input dim mismatch");
    std::vector<float> out = v;
    apply(out.data(), position);
    return out;
}

} // namespace longsight

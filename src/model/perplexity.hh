/**
 * @file
 * Perplexity proxy for sparse-attention quality (see DESIGN.md).
 *
 * The paper scores algorithm quality as *relative perplexity increase
 * vs. dense attention*. Cross-entropy is a smooth function of the
 * attention output; to first order the increase is proportional to the
 * attention-output perturbation, which is itself governed by the
 * softmax probability mass the sparse mechanism failed to retain.
 * PerplexityProxy therefore accumulates, per evaluated (query, head):
 *
 *  - lost mass: 1 - sum of dense softmax probabilities over the tokens
 *    the sparse mechanism attended to, and
 *  - output error: ||o_sparse - o_dense|| / ||o_dense||, with o_sparse
 *    computed from renormalized probabilities over the attended set,
 *
 * and maps the mean lost mass to a relative perplexity increase via
 * dPPL% = 100 * (exp(kappa * mean_lost_mass) - 1). kappa = 1 is the
 * identity first-order mapping; figures report relative numbers so any
 * monotone calibration yields the same orderings and crossovers.
 */

#ifndef LONGSIGHT_MODEL_PERPLEXITY_HH
#define LONGSIGHT_MODEL_PERPLEXITY_HH

#include <cstdint>
#include <vector>

#include "util/stats.hh"

namespace longsight {

/**
 * Accumulates sparse-vs-dense attention fidelity across evaluation
 * steps and converts it to a relative-perplexity score.
 */
class PerplexityProxy
{
  public:
    /**
     * Record one (query, head) evaluation.
     *
     * @param dense_probs full dense softmax over the entire context
     * @param attended    token indices the sparse mechanism attended to
     * @param dense_out   exact attention output (may be empty to skip
     *                    the output-error metric)
     * @param sparse_out  sparse attention output (same length)
     */
    void record(const std::vector<float> &dense_probs,
                const std::vector<uint32_t> &attended,
                const std::vector<float> &dense_out = {},
                const std::vector<float> &sparse_out = {});

    /** Record pre-computed lost mass directly. */
    void recordLostMass(double lost_mass);

    /** Mean softmax mass lost across all recorded evaluations. */
    double meanLostMass() const { return lostMass_.mean(); }

    /** Mean relative output error (only over records that supplied it). */
    double meanOutputError() const { return outputError_.mean(); }

    /** Relative perplexity increase in percent. */
    double relPplIncreasePct(double kappa = 1.0) const;

    uint64_t evaluations() const { return lostMass_.count(); }

    void merge(const PerplexityProxy &other);

  private:
    RunningStat lostMass_;
    RunningStat outputError_;
};

} // namespace longsight

#endif // LONGSIGHT_MODEL_PERPLEXITY_HH

/**
 * @file
 * Open-loop serving traffic generation: the arrival processes and
 * request-size distributions a production long-context deployment
 * faces (CSAttention names reusable-prefix, heavy-tailed traffic as
 * the dominant pattern; §4's rate/SLO requirements assume open-loop
 * arrivals, where requests keep landing whether or not the engine
 * keeps up).
 *
 * Two arrival processes:
 *  - Poisson: exponential interarrivals at a constant offered rate.
 *  - Diurnal: a nonhomogeneous Poisson process whose rate follows a
 *    sinusoidal "day" (peak-to-trough ratio configurable), generated
 *    by Lewis thinning so the trace is exact, not binned.
 *
 * Request sizes are lognormal (heavy-tailed: most prompts are short,
 * a fat tail reaches the 128K ceiling) and clamped to configured
 * bounds; a fraction of requests is tagged interactive (latency-
 * sensitive) for the engine's priority classes. Everything flows
 * through one seeded Rng, so a (config, seed) pair fully determines
 * the trace.
 */

#ifndef LONGSIGHT_MODEL_TRAFFIC_HH
#define LONGSIGHT_MODEL_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "util/units.hh"

namespace longsight {

/** Scheduling class of a request (engine preempts Batch for
 *  Interactive when the block budget binds). */
enum class Priority : uint8_t { Batch = 0, Interactive = 1 };

/**
 * One serving request as the traffic generator emits it and the
 * serving engine consumes it.
 */
struct ServingRequest
{
    uint32_t id = 0;
    Tick arrival = 0;
    uint64_t promptLen = 0;
    uint32_t outputTokens = 1;
    Priority priority = Priority::Batch;
    /**
     * Leading prompt tokens whose KV blocks are shared via the paged
     * pool's prefix registry (KvCache::adoptPrefix) — e.g. a common
     * system prompt. Admission charges only the private tail: shared
     * FULL blocks cost nothing (publishPrefix truncates the published
     * prefix to a block boundary), and the shared tokens need no
     * prefill compute. 0 = fully private prompt (the default, and
     * the pre-prefix-cache behaviour).
     */
    uint64_t sharedPrefixTokens = 0;
};

/** Arrival process family. */
enum class ArrivalProcess { Poisson, Diurnal };

/**
 * Shape of an open-loop trace.
 */
struct TrafficConfig
{
    uint32_t requests = 1024;    //!< simulated users (one request each)
    ArrivalProcess process = ArrivalProcess::Poisson;
    double arrivalsPerSec = 8.0; //!< mean offered rate

    /** Diurnal only: peak rate / trough rate (> 1). */
    double diurnalPeakToTrough = 4.0;
    /** Diurnal only: one compressed "day". */
    Tick diurnalPeriod = 120 * kSecond;

    // Heavy-tailed lognormal prompt lengths (tokens), clamped.
    double promptLogMean = 7.6;  //!< ln tokens; e^7.6 ~ 2000
    double promptLogSigma = 1.1;
    uint64_t promptMin = 64;
    uint64_t promptMax = 131072;

    // Lognormal output budgets (tokens), clamped.
    double outputLogMean = 4.8;  //!< e^4.8 ~ 120
    double outputLogSigma = 0.8;
    uint32_t outputMin = 1;
    uint32_t outputMax = 4096;

    /** Fraction of requests tagged Priority::Interactive. */
    double interactiveFraction = 0.125;

    uint64_t seed = 1;
};

/**
 * Generate the trace: `requests` arrivals sorted by time, ids in
 * arrival order. Deterministic in (cfg, cfg.seed).
 */
std::vector<ServingRequest> generateTraffic(const TrafficConfig &cfg);

} // namespace longsight

#endif // LONGSIGHT_MODEL_TRAFFIC_HH

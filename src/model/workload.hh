/**
 * @file
 * Synthetic Q/K/V workload generator standing in for real Llama-3
 * activations (see DESIGN.md "Substitutions").
 *
 * The generator reproduces the statistical properties of LLM
 * key/query distributions that the paper identifies as decisive for
 * Sign-Concordance Filtering and top-k sparse attention:
 *
 *  1. *Clustering* (§5.4: "KV representations in LLaMA models exhibit
 *     strong clustering"): tokens belong to latent topics that evolve
 *     as a sticky Markov chain, so keys form temporally coherent
 *     clusters.
 *
 *  2. *Hierarchical relevance*: every contiguous topic run is a
 *     "segment" with its own identity vector. A query targets one
 *     specific segment (recent with probability queryLocalProb,
 *     otherwise a uniformly random past segment — long-range
 *     retrieval). Dense softmax mass therefore concentrates on a
 *     bounded set of tokens (the target segment) plus a topic halo
 *     that grows with context length — which is exactly why a fixed
 *     small k degrades at long contexts (Fig. 3a) while k ~ 1024
 *     holds up.
 *
 *  3. *Anisotropy / outlier dimensions*: a per-dimension magnitude
 *     spectrum with steep decay. Raw sign bits are then dominated by
 *     a few informative dimensions plus many noise bits — the failure
 *     mode ITQ repairs (§5.4).
 *
 *  4. *Positional rotation*: RoPE is applied to keys and queries after
 *     generation (so ITQ cannot be fused into a projection, §5.4).
 *     Content energy is placed in the slowly-rotating frequency pairs,
 *     matching the documented behaviour of RoPE-trained transformers,
 *     which learn to carry retrievable content in low-frequency
 *     dimensions so long-range matching survives rotation.
 */

#ifndef LONGSIGHT_MODEL_WORKLOAD_HH
#define LONGSIGHT_MODEL_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "model/rope.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace longsight {

/**
 * Tunable statistics of the synthetic KV workload.
 */
struct WorkloadConfig
{
    uint32_t headDim = 64;
    uint32_t numClusters = 12;     //!< latent topics per head
    double stickiness = 0.98;      //!< P(topic unchanged) per token
    double clusterScale = 3.0;     //!< topic-center magnitude
    double segmentScale = 2.4;     //!< per-segment identity magnitude
    double noiseScale = 0.5;       //!< key noise around its center
    double queryNoiseScale = 0.5;  //!< query noise around its center
    double meanScale = 0.6;        //!< global mean offset (sign imbalance)
    double spectrumDecay = 0.93;   //!< per-frequency magnitude decay
    double spectrumFloor = 0.08;   //!< lower bound on dimension scale
    double queryLocalProb = 0.65;  //!< P(query targets a recent segment)
    bool applyRope = true;
    double ropeTheta = 500000.0;   //!< Llama-3 RoPE base

    /**
     * Project-Gutenberg-like statistics (§8.1.1): complete books —
     * long coherent topic runs, fewer distinct topics, and queries
     * that frequently revisit distant chapters.
     */
    static WorkloadConfig pgLike(uint32_t head_dim);

    /**
     * Concatenated-Wiki2-like statistics (§8.1.1): short passages
     * stitched together — frequent topic switches, many topics, and
     * mostly local queries.
     */
    static WorkloadConfig wiki2Like(uint32_t head_dim);
};

/**
 * One KV head's worth of synthetic context: keys, values, and query
 * drawing. Independent heads are created by forking the RNG.
 */
class HeadWorkload
{
  public:
    HeadWorkload(const WorkloadConfig &cfg, Rng rng);

    /** Generate a context of n tokens (replaces any prior context). */
    void generate(size_t n);

    /** Append one more token to the context (decode-time update). */
    void appendToken();

    size_t contextLength() const { return keys_.rows(); }

    /** Post-RoPE keys, one row per token. */
    const Matrix &keys() const { return keys_; }

    /** Values, one row per token. */
    const Matrix &values() const { return values_; }

    /** Latent topic of each token (exposed for tests/analysis). */
    const std::vector<uint32_t> &topics() const { return topics_; }

    /** Segment (contiguous topic run) of each token. */
    const std::vector<uint32_t> &segments() const { return segments_; }

    /**
     * Draw a post-RoPE query for the current decode position
     * (contextLength()). With probability queryLocalProb it targets
     * the most recent segment, otherwise a uniformly random past
     * segment (long-range retrieval).
     */
    std::vector<float> drawQuery();

    /** Draw a query targeting a specific segment (for tests). */
    std::vector<float> drawQueryForSegment(uint32_t segment);

    /** Draw a query aligned only with a topic center (for tests). */
    std::vector<float> drawQueryForTopic(uint32_t topic);

    /** 1/sqrt(headDim) softmax scale. */
    float attentionScale() const;

  private:
    /** Shared body of key/query sampling. */
    std::vector<float> sampleVector(uint32_t topic, int segment,
                                    double noise_scale);

    void startContext();
    void pushToken(Matrix &keys, Matrix &values, size_t pos);
    void advanceTopic();
    const std::vector<float> &segmentIdentity(uint32_t segment);

    WorkloadConfig cfg_;
    Rng rng_;
    Rng identityRng_; //!< dedicated stream for segment identities
    Rope rope_;
    Matrix clusterCenters_;       //!< numClusters x headDim
    std::vector<float> mean_;     //!< global offset
    std::vector<float> spectrum_; //!< per-dimension scales (pair-tied)
    std::vector<std::vector<float>> segmentIds_;
    Matrix keys_;
    Matrix values_;
    std::vector<uint32_t> topics_;
    std::vector<uint32_t> segments_;
    uint32_t currentTopic_ = 0;
    uint32_t currentSegment_ = 0;
};

/**
 * A bundle of independent HeadWorkloads for all KV heads of a model
 * shape, deterministically derived from one seed.
 */
std::vector<HeadWorkload> makeHeadWorkloads(const WorkloadConfig &cfg,
                                            uint32_t num_heads,
                                            uint64_t seed);

} // namespace longsight

#endif // LONGSIGHT_MODEL_WORKLOAD_HH

#include "model/workload.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace longsight {

WorkloadConfig
WorkloadConfig::pgLike(uint32_t head_dim)
{
    WorkloadConfig cfg;
    cfg.headDim = head_dim;
    cfg.numClusters = 8;       // a book has few running themes
    cfg.stickiness = 0.995;    // chapter-length segments
    cfg.queryLocalProb = 0.55; // plots call back to earlier chapters
    return cfg;
}

WorkloadConfig
WorkloadConfig::wiki2Like(uint32_t head_dim)
{
    WorkloadConfig cfg;
    cfg.headDim = head_dim;
    cfg.numClusters = 24;      // many unrelated articles
    cfg.stickiness = 0.96;     // short passages
    cfg.queryLocalProb = 0.8;  // concatenation rarely links back
    return cfg;
}

HeadWorkload::HeadWorkload(const WorkloadConfig &cfg, Rng rng)
    : cfg_(cfg), rng_(rng), identityRng_(rng_.fork()),
      rope_(cfg.headDim, cfg.ropeTheta)
{
    const uint32_t d = cfg_.headDim;
    const uint32_t half = d / 2;

    // Attention score gaps scale as (cluster x segment energy)/sqrt(d)
    // while the spectrum's total energy is dimension-independent, so
    // compensate the structure scales to keep softmax concentration
    // comparable across head dimensions (64 vs 128).
    const double dim_comp = std::pow(d / 64.0, 0.25);
    cfg_.clusterScale *= dim_comp;
    cfg_.segmentScale *= dim_comp;

    // Frequency-ordered magnitude spectrum. RoPE's half-split pairs
    // dimension i with i + d/2, both rotating at invFreq_i which
    // *decays* with i. Content energy goes to the slow (high-i) pairs
    // so semantic matching survives long-range rotation — the
    // frequency allocation RoPE-trained transformers exhibit.
    spectrum_.resize(d);
    for (uint32_t i = 0; i < half; ++i) {
        const double s = std::max(
            std::pow(cfg_.spectrumDecay, static_cast<double>(half - 1 - i)),
            cfg_.spectrumFloor);
        spectrum_[i] = static_cast<float>(s);
        spectrum_[i + half] = static_cast<float>(s);
    }

    // Global mean offset, shaped by the spectrum — real LLM keys are
    // not centered at the origin, which skews raw sign statistics.
    mean_.resize(d);
    for (uint32_t i = 0; i < d; ++i)
        mean_[i] = static_cast<float>(cfg_.meanScale * rng_.gaussian()) *
            spectrum_[i];

    // Topic centers, also shaped by the spectrum.
    clusterCenters_.resize(cfg_.numClusters, d);
    for (uint32_t c = 0; c < cfg_.numClusters; ++c)
        for (uint32_t i = 0; i < d; ++i)
            clusterCenters_(c, i) =
                static_cast<float>(cfg_.clusterScale * rng_.gaussian()) *
                spectrum_[i];

    startContext();
}

void
HeadWorkload::startContext()
{
    currentTopic_ = static_cast<uint32_t>(rng_.below(cfg_.numClusters));
    currentSegment_ = 0;
    segmentIds_.clear();
    topics_.clear();
    segments_.clear();
}

const std::vector<float> &
HeadWorkload::segmentIdentity(uint32_t segment)
{
    while (segmentIds_.size() <= segment) {
        // LS_LINT_ALLOW(alloc): lazy cache, grows once per new segment
        std::vector<float> id(cfg_.headDim);
        for (uint32_t i = 0; i < cfg_.headDim; ++i)
            id[i] = static_cast<float>(cfg_.segmentScale *
                                       identityRng_.gaussian()) *
                spectrum_[i];
        // LS_LINT_ALLOW(alloc): lazy cache, grows once per new segment
        segmentIds_.push_back(std::move(id));
    }
    return segmentIds_[segment];
}

std::vector<float>
HeadWorkload::sampleVector(uint32_t topic, int segment, double noise_scale)
{
    const uint32_t d = cfg_.headDim;
    // Synthetic token generation stands in for the model's QKV
    // projections, which a real serving stack computes elsewhere.
    // LS_LINT_ALLOW(alloc): generator scratch, not a serving path
    std::vector<float> v(d);
    const std::vector<float> *seg_id =
        segment >= 0 ? &segmentIdentity(static_cast<uint32_t>(segment))
                     : nullptr;
    for (uint32_t i = 0; i < d; ++i) {
        const float noise =
            static_cast<float>(noise_scale * rng_.gaussian()) * spectrum_[i];
        v[i] = mean_[i] + clusterCenters_(topic, i) + noise;
        if (seg_id)
            v[i] += (*seg_id)[i];
    }
    return v;
}

void
HeadWorkload::advanceTopic()
{
    if (rng_.uniform() >= cfg_.stickiness) {
        currentTopic_ = static_cast<uint32_t>(rng_.below(cfg_.numClusters));
        ++currentSegment_;
    }
}

void
HeadWorkload::pushToken(Matrix &keys, Matrix &values, size_t pos)
{
    std::vector<float> k = sampleVector(
        currentTopic_, static_cast<int>(currentSegment_), cfg_.noiseScale);
    if (cfg_.applyRope)
        rope_.apply(k.data(), pos);

    // Values carry no planted structure; attention output fidelity is
    // measured against the exact dense result, so any distribution
    // works.
    const std::vector<float> v = rng_.gaussianVec(cfg_.headDim);

    keys.setRow(pos, k.data());
    values.setRow(pos, v.data());
    // LS_LINT_ALLOW(alloc): context history is the workload's product
    topics_.push_back(currentTopic_);
    // LS_LINT_ALLOW(alloc): context history is the workload's product
    segments_.push_back(currentSegment_);
}

void
HeadWorkload::generate(size_t n)
{
    startContext();
    const uint32_t d = cfg_.headDim;
    Matrix keys(n, d), values(n, d);
    topics_.reserve(n);
    segments_.reserve(n);
    for (size_t t = 0; t < n; ++t) {
        if (t > 0)
            advanceTopic();
        pushToken(keys, values, t);
    }
    keys_ = std::move(keys);
    values_ = std::move(values);
}

void
HeadWorkload::appendToken()
{
    const size_t pos = keys_.rows();
    const uint32_t d = cfg_.headDim;
    Matrix keys(pos + 1, d), values(pos + 1, d);
    std::copy(keys_.data(), keys_.data() + pos * d, keys.data());
    std::copy(values_.data(), values_.data() + pos * d, values.data());
    if (pos > 0)
        advanceTopic();
    pushToken(keys, values, pos);
    keys_ = std::move(keys);
    values_ = std::move(values);
}

std::vector<float>
HeadWorkload::drawQuery()
{
    LS_ASSERT(!segments_.empty(), "drawQuery on an empty context");
    uint32_t segment;
    if (rng_.uniform() < cfg_.queryLocalProb) {
        segment = segments_.back();
    } else {
        // Revisit the segment of a uniformly random past token, so the
        // long-range target density matches the context composition.
        segment = segments_[rng_.below(segments_.size())];
    }
    return drawQueryForSegment(segment);
}

std::vector<float>
HeadWorkload::drawQueryForSegment(uint32_t segment)
{
    LS_ASSERT(segment <= currentSegment_, "segment ", segment,
              " not generated yet");
    // The segment's topic: find any token of that segment.
    uint32_t topic = currentTopic_;
    for (size_t i = segments_.size(); i-- > 0;) {
        if (segments_[i] == segment) {
            topic = topics_[i];
            break;
        }
    }
    std::vector<float> q = sampleVector(topic, static_cast<int>(segment),
                                        cfg_.queryNoiseScale);
    if (cfg_.applyRope)
        rope_.apply(q.data(), contextLength());
    return q;
}

std::vector<float>
HeadWorkload::drawQueryForTopic(uint32_t topic)
{
    LS_ASSERT(topic < cfg_.numClusters, "topic ", topic, " out of range");
    std::vector<float> q = sampleVector(topic, -1, cfg_.queryNoiseScale);
    if (cfg_.applyRope)
        rope_.apply(q.data(), contextLength());
    return q;
}

float
HeadWorkload::attentionScale() const
{
    return 1.0f / std::sqrt(static_cast<float>(cfg_.headDim));
}

std::vector<HeadWorkload>
makeHeadWorkloads(const WorkloadConfig &cfg, uint32_t num_heads,
                  uint64_t seed)
{
    Rng root(seed);
    std::vector<HeadWorkload> heads;
    heads.reserve(num_heads);
    for (uint32_t h = 0; h < num_heads; ++h)
        heads.emplace_back(cfg, root.fork());
    return heads;
}

} // namespace longsight

/**
 * @file
 * A numerically real decoder-only transformer stack with procedural
 * (seeded, fan-in-scaled) weights, in which the attention module is
 * swappable — exact dense attention or LongSightAttn — mirroring how
 * the paper's artifact replaces the HuggingFace Llama attention module
 * (§A.1). RMSNorm, GQA QKV projections, RoPE, output projection, and
 * a SiLU-gated FFN with residual connections are all computed for
 * real, so model-level properties (the hybrid path degenerating to
 * the dense model bit-closely at generous settings; bounded output
 * divergence under filtering) can be tested end to end rather than
 * per attention call.
 */

#ifndef LONGSIGHT_MODEL_DECODER_HH
#define LONGSIGHT_MODEL_DECODER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/kv_cache.hh"
#include "core/multi_head.hh"
#include "model/rope.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace longsight {

/**
 * Shape of the synthetic decoder (a scaled-down Llama-3 block).
 */
struct DecoderConfig
{
    uint32_t hiddenDim = 256;
    uint32_t numLayers = 4;
    uint32_t numQueryHeads = 8;
    uint32_t numKvHeads = 2;
    uint32_t headDim = 32;
    uint32_t ffnDim = 512;
    double ropeTheta = 500000.0;
    uint64_t seed = 1;
};

/**
 * Which attention the stack runs.
 */
enum class AttentionMode
{
    Dense,     //!< exact softmax over the full context
    LongSight, //!< hybrid window + SCF/top-k sparse path
};

/**
 * One decoder layer: norms, projections, attention, FFN, residuals.
 */
class DecoderLayer
{
  public:
    DecoderLayer(const DecoderConfig &cfg, Rng &rng);

    /**
     * Forward one token at `position`; appends this token's K/V to
     * `caches` (one per KV head) and attends over them.
     *
     * @param hybrid LongSight module for AttentionMode::LongSight;
     *        ignored in dense mode
     */
    std::vector<float> forward(const std::vector<float> &x,
                               uint64_t position,
                               std::vector<KvCache> &caches,
                               AttentionMode mode,
                               const MultiHeadLongSight *hybrid) const;

  private:
    /** y = W x for a (rows x cols) weight, x length cols. */
    std::vector<float> project(const Matrix &w,
                               const std::vector<float> &x) const;

    DecoderConfig cfg_;
    Rope rope_;
    Matrix wq_; //!< (QH*d) x hidden
    Matrix wk_; //!< (KVH*d) x hidden
    Matrix wv_; //!< (KVH*d) x hidden
    Matrix wo_; //!< hidden x (QH*d)
    Matrix wGate_; //!< ffn x hidden
    Matrix wUp_;   //!< ffn x hidden
    Matrix wDown_; //!< hidden x ffn
};

/**
 * The full stack plus per-layer KV caches for one user.
 */
class SyntheticDecoder
{
  public:
    SyntheticDecoder(const DecoderConfig &cfg, AttentionMode mode,
                     const LongSightConfig &hybrid = LongSightConfig{});

    const DecoderConfig &config() const { return cfg_; }
    AttentionMode mode() const { return mode_; }
    size_t contextLength() const;

    /** Forward one token embedding through all layers. */
    std::vector<float> step(const std::vector<float> &embedding);

    /** Access a layer's KV caches (for ITQ installation etc.). */
    std::vector<KvCache> &layerCaches(uint32_t layer);

    /** The hybrid attention module (LongSight mode only). */
    MultiHeadLongSight &hybridAttention();

  private:
    DecoderConfig cfg_;
    AttentionMode mode_;
    std::vector<DecoderLayer> layers_;
    std::vector<std::vector<KvCache>> caches_; //!< [layer][kv head]
    std::unique_ptr<MultiHeadLongSight> hybrid_;
    uint64_t position_ = 0;
};

/** RMS normalization (unit gain), the Llama pre-norm. */
std::vector<float> rmsNorm(const std::vector<float> &x);

} // namespace longsight

#endif // LONGSIGHT_MODEL_DECODER_HH

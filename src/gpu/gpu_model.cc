#include "gpu/gpu_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace longsight {

GpuModel::GpuModel(const GpuConfig &gpu, const ModelConfig &model)
    : gpu_(gpu), model_(model)
{
    LS_ASSERT(model.weightBytes() < gpu.hbmCapacity,
              model.name, " weights do not fit in GPU HBM");
}

Tick
GpuModel::rooflineTime(double flops, double bytes) const
{
    const double t_compute = flops / (gpu_.peakFlops * gpu_.flopsEfficiency);
    const double t_memory = bytes / (gpu_.hbmBandwidth * gpu_.bwEfficiency);
    return static_cast<Tick>(std::max(t_compute, t_memory) * 1e12);
}

Tick
GpuModel::decodeNonAttentionTime(uint32_t users) const
{
    const double weight_bytes = static_cast<double>(model_.weightBytes());
    const double flops =
        static_cast<double>(model_.decodeFlopsPerTokenNoAttn()) * users;
    // Activation traffic is negligible next to streaming the weights.
    return rooflineTime(flops, weight_bytes) + gpu_.kernelLaunchOverhead;
}

Tick
GpuModel::prefillTime(uint64_t prompt_len) const
{
    if (prompt_len == 0)
        return 0;
    // Every prompt token runs the non-attention stack (GEMM-batched
    // across tokens) plus causal attention: sum_t 4*d*h*t flops ~
    // 2*d*h*L^2 per layer.
    const double stack_flops =
        static_cast<double>(model_.decodeFlopsPerTokenNoAttn()) *
        static_cast<double>(prompt_len);
    const double attn_flops = 2.0 * model_.headDim *
        model_.numQueryHeads * model_.numLayers *
        static_cast<double>(prompt_len) * static_cast<double>(prompt_len);
    const double bytes = static_cast<double>(model_.weightBytes()) +
        static_cast<double>(model_.kvBytesPerToken()) * prompt_len;
    return rooflineTime(stack_flops + attn_flops, bytes) +
        gpu_.kernelLaunchOverhead;
}

Tick
GpuModel::denseAttentionTime(uint64_t context_len, uint32_t users) const
{
    if (context_len == 0 || users == 0)
        return 0;
    // Each user's KV cache is streamed once per decode step.
    const double kv_bytes = static_cast<double>(model_.kvBytesPerToken()) *
        static_cast<double>(context_len) * users;
    const double flops =
        static_cast<double>(model_.attentionFlopsPerToken(context_len)) *
        users;
    return rooflineTime(flops, kv_bytes) + gpu_.kernelLaunchOverhead;
}

Tick
GpuModel::attentionLayerTime(uint64_t context_len, uint32_t users) const
{
    if (context_len == 0 || users == 0)
        return 0;
    const double kv_bytes = static_cast<double>(model_.kvBytesPerToken()) /
        model_.numLayers * static_cast<double>(context_len) * users;
    const double flops =
        static_cast<double>(model_.attentionFlopsPerToken(context_len)) /
        model_.numLayers * users;
    return rooflineTime(flops, kv_bytes) +
        gpu_.kernelLaunchOverhead / model_.numLayers;
}

Tick
GpuModel::windowAttentionTime(uint64_t window_tokens, uint32_t users) const
{
    return attentionLayerTime(window_tokens, users);
}

Tick
GpuModel::itqRotationTime(uint32_t users) const
{
    // One d x d GEMV per query head and per new key, per layer.
    const double d = model_.headDim;
    const double rotations =
        static_cast<double>(model_.numQueryHeads + model_.numKvHeads) *
        model_.numLayers * users;
    const double flops = 2.0 * d * d * rotations;
    const double bytes = d * d * model_.bytesPerValue *
        static_cast<double>(model_.numKvHeads) * model_.numLayers;
    return rooflineTime(flops, bytes);
}

Tick
GpuModel::softmaxCombineTime(uint64_t candidates, uint32_t users) const
{
    if (candidates == 0 || users == 0)
        return 0;
    // Softmax over candidates plus the SV accumulation of the sparse
    // part's value vectors, for one layer. Compute scales with query
    // heads; value traffic with KV heads (a GQA group shares its KV
    // head's value vectors).
    const double per_head =
        static_cast<double>(candidates) * (4.0 + 2.0 * model_.headDim);
    const double flops =
        per_head * model_.numQueryHeads * static_cast<double>(users);
    const double bytes = static_cast<double>(candidates) * model_.headDim *
        model_.bytesPerValue * model_.numKvHeads *
        static_cast<double>(users);
    return rooflineTime(flops, bytes);
}

uint64_t
GpuModel::kvBudgetBytes() const
{
    // Keep ~4 GiB of headroom for activations and workspace.
    const uint64_t reserve = 4ULL * kGiB;
    const uint64_t used = model_.weightBytes() + reserve;
    return gpu_.hbmCapacity > used ? gpu_.hbmCapacity - used : 0;
}

uint32_t
GpuModel::maxUsersDense(uint64_t context_len) const
{
    if (context_len == 0)
        return 0;
    const uint64_t per_user = model_.kvBytesPerToken() * context_len;
    return static_cast<uint32_t>(kvBudgetBytes() / per_user);
}

uint32_t
GpuModel::maxUsersWindowed(uint64_t window_tokens) const
{
    return maxUsersDense(window_tokens);
}

} // namespace longsight

/**
 * @file
 * Analytical (roofline) H100 performance model. The paper combines
 * real-system GPU measurements with a simulated DReX; this model
 * substitutes the measurements (see DESIGN.md) while preserving what
 * decides every crossover in Figs. 7-9: decode-time attention is
 * memory-bandwidth bound (vector-matrix), non-attention layers are
 * weight-streaming bound until batching makes them compute bound, and
 * HBM capacity caps the (context x users) product.
 */

#ifndef LONGSIGHT_GPU_GPU_MODEL_HH
#define LONGSIGHT_GPU_GPU_MODEL_HH

#include <cstdint>

#include "model/model_config.hh"
#include "util/units.hh"

namespace longsight {

/**
 * GPU hardware parameters (Table 2 H100 SXM values by default).
 */
struct GpuConfig
{
    double peakFlops = 989e12;      //!< BF16 tensor-core FLOP/s
    double hbmBandwidth = 3.35e12;  //!< bytes/s
    uint64_t hbmCapacity = 80ULL * kGiB;
    double flopsEfficiency = 0.55;  //!< achievable GEMM fraction
    double bwEfficiency = 0.80;     //!< achievable streaming fraction
    Tick kernelLaunchOverhead = fromNanoseconds(4000.0); //!< per fused step

    static GpuConfig h100() { return GpuConfig{}; }
};

/**
 * Roofline timing for decode-phase transformer execution.
 */
class GpuModel
{
  public:
    GpuModel(const GpuConfig &gpu, const ModelConfig &model);

    const GpuConfig &gpu() const { return gpu_; }
    const ModelConfig &model() const { return model_; }

    /** Roofline time for `flops` touching `bytes` of HBM. */
    Tick rooflineTime(double flops, double bytes) const;

    /**
     * One decode step's non-attention work (QKV, projections, FFN,
     * LM head) for a batch of `users`: weights stream once, compute
     * scales with the batch.
     */
    Tick decodeNonAttentionTime(uint32_t users) const;

    /**
     * Prefill of a `prompt_len`-token prompt for one user: matrix-
     * matrix work (compute-bound on tensor cores, §2.1) including the
     * causal attention over the prompt.
     */
    Tick prefillTime(uint64_t prompt_len) const;

    /**
     * Dense attention over `context_len` tokens for `users`, all
     * layers and query heads (decode step: one query per user).
     */
    Tick denseAttentionTime(uint64_t context_len, uint32_t users) const;

    /**
     * Dense attention for a single decoder layer (the unit that
     * overlaps with one DReX offload in the hybrid pipeline).
     */
    Tick attentionLayerTime(uint64_t context_len, uint32_t users) const;

    /**
     * Hybrid-mode GPU-side attention for one layer: dense window
     * (+ sinks) only.
     */
    Tick windowAttentionTime(uint64_t window_tokens, uint32_t users) const;

    /** Runtime ITQ rotation of the new Q/K vectors (§5.4, <3 % of QKV). */
    Tick itqRotationTime(uint32_t users) const;

    /**
     * Combine softmax over (window + k) candidates and the hybrid SV
     * accumulation for the sparse part, for ONE layer (GPU steps 5-7
     * of Fig. 2b).
     */
    Tick softmaxCombineTime(uint64_t candidates, uint32_t users) const;

    /** HBM bytes left for KV after weights. */
    uint64_t kvBudgetBytes() const;

    /** Max concurrent users whose full KV fits at `context_len`. */
    uint32_t maxUsersDense(uint64_t context_len) const;

    /** Max users when only window + sinks live in HBM (LongSight). */
    uint32_t maxUsersWindowed(uint64_t window_tokens) const;

  private:
    GpuConfig gpu_;
    ModelConfig model_;
};

} // namespace longsight

#endif // LONGSIGHT_GPU_GPU_MODEL_HH

/**
 * @file
 * CXL Type-3 link model (§6, §8.2). The GPU reaches DReX through
 * load/store-visible MMIO (request descriptors, polling register) and
 * bulk data reads (top-k scores and value vectors). The model charges
 * a fixed per-access latency plus a size/bandwidth term and tracks
 * link occupancy so concurrent users contend for bandwidth — the
 * paper's "Value loading over CXL" component that dominates
 * short-context offloads (Fig. 8).
 */

#ifndef LONGSIGHT_CXL_LINK_HH
#define LONGSIGHT_CXL_LINK_HH

#include <cstdint>

#include "util/units.hh"

namespace longsight {

/**
 * Link latency/bandwidth parameters. Defaults follow the dual-socket
 * Xeon emulation methodology of the paper (Pond-style latencies) and
 * a PCIe 5.0 x16 physical link.
 */
struct CxlConfig
{
    Tick accessLatency = fromNanoseconds(250.0); //!< one-way ld/st latency
    Tick mmioWriteLatency = fromNanoseconds(200.0); //!< posted MMIO write
    double bandwidthGBps = 56.0; //!< usable PCIe5 x16 payload bandwidth
    Tick pollInterval = fromNanoseconds(500.0); //!< GPU polling cadence
    uint32_t descriptorBytes = 256; //!< request descriptor size
};

/**
 * A point-to-point CXL link with occupancy tracking.
 */
class CxlLink
{
  public:
    explicit CxlLink(const CxlConfig &cfg);

    const CxlConfig &config() const { return cfg_; }

    /**
     * Posted MMIO write of `bytes` issued at `start`; returns the tick
     * the device observes it.
     */
    Tick mmioWrite(Tick start, uint32_t bytes);

    /**
     * Bulk read of `bytes` from the device starting at `start`
     * (device-side data ready). Occupies link bandwidth; returns the
     * tick the last byte lands at the host/GPU.
     */
    Tick bulkRead(Tick start, uint64_t bytes);

    /**
     * GPU polls for a completion the device raises at `device_done`.
     * Polling starts at `poll_begin`; each poll is one round trip.
     * Returns the tick the GPU observes completion.
     */
    Tick pollCompletion(Tick poll_begin, Tick device_done) const;

    /** Total bytes moved through the link so far. */
    uint64_t bytesTransferred() const { return bytesMoved_; }

    /** First tick the link's data path is free. */
    Tick linkFree() const { return linkFree_; }

  private:
    CxlConfig cfg_;
    Tick linkFree_ = 0;
    uint64_t bytesMoved_ = 0;
};

} // namespace longsight

#endif // LONGSIGHT_CXL_LINK_HH

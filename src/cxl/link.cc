#include "cxl/link.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

CxlLink::CxlLink(const CxlConfig &cfg) : cfg_(cfg)
{
    LS_ASSERT(cfg.bandwidthGBps > 0.0, "CXL bandwidth must be positive");
}

Tick
CxlLink::mmioWrite(Tick start, uint32_t bytes)
{
    const Tick xfer = transferTime(bytes, cfg_.bandwidthGBps);
    const Tick begin = std::max(start, linkFree_);
    linkFree_ = begin + xfer;
    bytesMoved_ += bytes;
    return begin + cfg_.mmioWriteLatency + xfer;
}

Tick
CxlLink::bulkRead(Tick start, uint64_t bytes)
{
    LS_ASSERT(bytes > 0, "zero-byte CXL read");
    const Tick xfer = transferTime(bytes, cfg_.bandwidthGBps);
    const Tick begin = std::max(start, linkFree_);
    linkFree_ = begin + xfer;
    bytesMoved_ += bytes;
    return begin + cfg_.accessLatency + xfer;
}

Tick
CxlLink::pollCompletion(Tick poll_begin, Tick device_done) const
{
    // Each poll round trip costs 2x the access latency; the first poll
    // that *departs* after the device raised completion observes it.
    const Tick round_trip = 2 * cfg_.accessLatency;
    if (poll_begin >= device_done)
        return poll_begin + round_trip;
    const Tick wait = device_done - poll_begin;
    const uint64_t polls = wait / cfg_.pollInterval +
        ((wait % cfg_.pollInterval) ? 1 : 0);
    return poll_begin + polls * cfg_.pollInterval + round_trip;
}

} // namespace longsight

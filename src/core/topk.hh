/**
 * @file
 * Top-k selection over attention scores — the paper's §5 ranking
 * stage. Provides a one-shot selection over a score array and a
 * streaming accumulator (TopK) matching the NMA hardware behaviour,
 * which evaluates scores epoch by epoch and keeps a bounded partial
 * top-k list (hardware cap k <= 1024, §7.2).
 */

#ifndef LONGSIGHT_CORE_TOPK_HH
#define LONGSIGHT_CORE_TOPK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace longsight {

/**
 * A scored candidate key.
 */
struct ScoredIndex
{
    float score;
    uint32_t index;

    /** Ordering: higher score wins; ties break toward lower index. */
    bool betterThan(const ScoredIndex &o) const
    {
        return score > o.score || (score == o.score && index < o.index);
    }
};

/**
 * Select the k best (score, index) pairs from parallel arrays.
 * Deterministic: ties resolve toward the lower index. Results are
 * sorted best-first. If k >= scores.size(), returns everything.
 */
std::vector<ScoredIndex> topkSelect(const std::vector<float> &scores,
                                    const std::vector<uint32_t> &indices,
                                    size_t k);

/**
 * Streaming bounded top-k accumulator (min-heap of capacity k).
 */
class TopK
{
  public:
    explicit TopK(size_t k);

    /** Offer one candidate. */
    void push(float score, uint32_t index);

    /** Merge another accumulator's contents (DCC aggregation path). */
    void merge(const TopK &other);

    size_t capacity() const { return k_; }
    size_t size() const { return heap_.size(); }

    /** Current worst retained score (only valid when size() == k). */
    float worstRetained() const;

    /** Extract results sorted best-first (accumulator stays intact). */
    std::vector<ScoredIndex> sortedResults() const;

  private:
    size_t k_;
    // Min-heap on betterThan-inverted ordering: heap_[0] is the entry
    // that the next better candidate evicts.
    std::vector<ScoredIndex> heap_;

    void siftUp(size_t i);
    void siftDown(size_t i);
    static bool worse(const ScoredIndex &a, const ScoredIndex &b);
};

} // namespace longsight

#endif // LONGSIGHT_CORE_TOPK_HH

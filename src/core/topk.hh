/**
 * @file
 * Top-k selection over attention scores — the paper's §5 ranking
 * stage. Provides a one-shot selection over a score array and a
 * streaming accumulator (TopK) matching the NMA hardware behaviour,
 * which evaluates scores epoch by epoch and keeps a bounded partial
 * top-k list (hardware cap k <= 1024, §7.2).
 */

#ifndef LONGSIGHT_CORE_TOPK_HH
#define LONGSIGHT_CORE_TOPK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

// ScoredIndex and the bounded-heap primitives live in the tensor layer
// so the fused batchScoreSelect kernel shares the exact same ordering
// implementation; this header re-exports them for existing callers.
#include "tensor/topk_heap.hh"

namespace longsight {

/**
 * Select the k best (score, index) pairs from parallel arrays.
 * Deterministic: ties resolve toward the lower index. Results are
 * sorted best-first. If k >= scores.size(), returns everything.
 */
std::vector<ScoredIndex> topkSelect(const std::vector<float> &scores,
                                    const std::vector<uint32_t> &indices,
                                    size_t k);

/**
 * Streaming bounded top-k accumulator (min-heap of capacity k).
 */
class TopK
{
  public:
    explicit TopK(size_t k);

    /** Offer one candidate. */
    void push(float score, uint32_t index);

    /** Merge another accumulator's contents (DCC aggregation path). */
    void merge(const TopK &other);

    size_t capacity() const { return k_; }
    size_t size() const { return heap_.size(); }

    /** Current worst retained score (only valid when size() == k). */
    float worstRetained() const;

    /** Extract results sorted best-first (accumulator stays intact). */
    std::vector<ScoredIndex> sortedResults() const;

    /**
     * Drain into the caller's span (capacity >= size()) sorted
     * best-first via in-place heapsort — no allocation, unlike
     * sortedResults. Returns the number of entries written. The
     * accumulator is left empty (capacity retained) for reuse.
     */
    size_t drainSorted(ScoredIndex *out);

  private:
    size_t k_;
    // Min-heap on betterThan-inverted ordering (topk_heap helpers):
    // heap_[0] is the entry that the next better candidate evicts.
    std::vector<ScoredIndex> heap_;
};

} // namespace longsight

#endif // LONGSIGHT_CORE_TOPK_HH

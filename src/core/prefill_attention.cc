#include "core/prefill_attention.hh"

#include <algorithm>
#include <cmath>

#include "core/attention.hh"
#include "tensor/kernels.hh"
#include "tensor/softmax.hh"
#include "tensor/topk_heap.hh"
#include "util/annotations.hh"
#include "util/logging.hh"
#include "util/scratch_arena.hh"
#include "util/thread_pool.hh"

namespace longsight {

void
PrefillStats::merge(const PrefillStats &o)
{
    qBlocks += o.qBlocks;
    candidateBlocks += o.candidateBlocks;
    keptBlocks += o.keptBlocks;
    forcedBlocks += o.forcedBlocks;
    attendedTokens += o.attendedTokens;
    denseTokens += o.denseTokens;
}

BlockSparsePrefill::BlockSparsePrefill(size_t head_dim,
                                       const PrefillSparsityConfig &cfg)
    : headDim_(head_dim), cfg_(cfg), blockSigs_(head_dim)
{
    LS_ASSERT(headDim_ > 0, "BlockSparsePrefill needs a head dimension");
    LS_ASSERT(cfg_.blockTokens > 0,
              "BlockSparsePrefill blockTokens must be positive");
    LS_ASSERT(cfg_.keepFraction >= 0.0 && cfg_.keepFraction <= 1.0,
              "BlockSparsePrefill keepFraction out of [0,1]: ",
              cfg_.keepFraction);
}

size_t
BlockSparsePrefill::windowStartBlock(size_t q_begin) const
{
    // The window is anchored at the BLOCK's first query so every query
    // in the block sees at least windowTokens dense local context;
    // Dense mode forces everything from block 0.
    if (cfg_.mode == PrefillSparsityMode::Dense)
        return 0;
    if (q_begin < cfg_.windowTokens)
        return 0;
    return (q_begin - cfg_.windowTokens) / cfg_.blockTokens;
}

void
BlockSparsePrefill::extendSignatures(const Matrix &keys, size_t full_blocks)
{
    if (sigBlocks_ >= full_blocks ||
        cfg_.mode == PrefillSparsityMode::Dense)
        return;
    const size_t B = cfg_.blockTokens;
    const size_t wpr = blockSigs_.wordsPerRow();
    ScratchFrame frame(ScratchArena::forThisThread());
    uint64_t *packed = frame.alloc<uint64_t>(B * wpr);
    // LS_LINT_ALLOW(alloc): once per K-block, off the per-token path
    blockSigs_.resizeRows(full_blocks);
    for (size_t b = sigBlocks_; b < full_blocks; ++b) {
        for (size_t r = 0; r < B; ++r)
            packSigns(keys.row(b * B + r), headDim_, packed + r * wpr);
        blockSignReduce(packed, wpr, B,
                        blockSigs_.data() + b * wpr);
    }
    sigBlocks_ = full_blocks;
}

void
BlockSparsePrefill::estimateTasks(const Matrix &queries)
{
    const size_t B = cfg_.blockTokens;
    const size_t wpr = blockSigs_.wordsPerRow();
    const size_t sink_blocks = (cfg_.sinkTokens + B - 1) / B;
    keptBuf_.clear();
    ScratchArena &arena = ScratchArena::forThisThread();
    for (size_t t0 = 0; t0 < tasks_.size(); t0 += kMaxScanQueries) {
        const size_t nq = std::min(kMaxScanQueries, tasks_.size() - t0);
        ScratchFrame frame(arena);
        uint64_t *sign_rows = frame.alloc<uint64_t>(B * wpr);
        uint64_t *qsigs = frame.alloc<uint64_t>(nq * wpr);
        size_t max_end = sink_blocks;
        for (size_t qi = 0; qi < nq; ++qi) {
            QBlockTask &t = tasks_[t0 + qi];
            const size_t rows = t.qEnd - t.qBegin;
            for (size_t r = 0; r < rows; ++r)
                packSigns(queries.row(t.qBegin + r), headDim_,
                          sign_rows + r * wpr);
            blockSignReduce(sign_rows, wpr, rows, qsigs + qi * wpr);
            t.candidates = t.windowStart > sink_blocks
                ? static_cast<uint32_t>(t.windowStart - sink_blocks)
                : 0;
            max_end = std::max<size_t>(max_end,
                                       sink_blocks + t.candidates);
        }
        if (max_end == sink_blocks) {
            // No task in this group has estimatable blocks.
            for (size_t qi = 0; qi < nq; ++qi) {
                tasks_[t0 + qi].keptOffset =
                    static_cast<uint32_t>(keptBuf_.size());
                tasks_[t0 + qi].keptCount = 0;
            }
            continue;
        }
        const size_t max_cand = max_end - sink_blocks;
        if (cfg_.mode == PrefillSparsityMode::Threshold) {
            // One streaming pass over the K-block signatures serves
            // the whole Q-block group (kMaxScanQueries packing); each
            // task then truncates the shared ascending survivor list
            // at its own causal window start.
            uint32_t *surv = frame.alloc<uint32_t>(nq * max_cand);
            size_t counts[kMaxScanQueries];
            batchScanMulti(qsigs, nq, blockSigs_, sink_blocks, max_end,
                           cfg_.threshold, surv, max_cand, counts);
            for (size_t qi = 0; qi < nq; ++qi) {
                QBlockTask &t = tasks_[t0 + qi];
                t.keptOffset = static_cast<uint32_t>(keptBuf_.size());
                const uint32_t *s = surv + qi * max_cand;
                const size_t own_end = sink_blocks + t.candidates;
                size_t kept = 0;
                for (size_t j = 0; j < counts[qi] && s[j] < own_end; ++j)
                    ++kept;
                keptBuf_.insert(keptBuf_.end(), s, s + kept);
                t.keptCount = static_cast<uint32_t>(kept);
            }
        } else {
            // TopFraction: concordance-score every candidate, keep the
            // best ceil(f * candidates) (ties -> lower block index),
            // then restore ascending block order for assembly.
            int32_t *conc = frame.alloc<int32_t>(max_cand);
            ScoredIndex *heap = frame.alloc<ScoredIndex>(max_cand);
            for (size_t qi = 0; qi < nq; ++qi) {
                QBlockTask &t = tasks_[t0 + qi];
                t.keptOffset = static_cast<uint32_t>(keptBuf_.size());
                t.keptCount = 0;
                if (t.candidates == 0)
                    continue;
                batchConcordance(qsigs + qi * wpr, blockSigs_,
                                 sink_blocks,
                                 sink_blocks + t.candidates, conc);
                const size_t keep = static_cast<size_t>(std::ceil(
                    cfg_.keepFraction *
                    static_cast<double>(t.candidates)));
                if (keep == 0)
                    continue;
                size_t hs = 0;
                for (size_t j = 0; j < t.candidates; ++j)
                    hs = topk_heap::push(
                        heap, hs, keep,
                        ScoredIndex{static_cast<float>(conc[j]),
                                    static_cast<uint32_t>(
                                        sink_blocks + j)});
                topk_heap::sortBestFirst(heap, hs);
                const size_t at = keptBuf_.size();
                for (size_t j = 0; j < hs; ++j)
                    keptBuf_.push_back(heap[j].index);
                std::sort(keptBuf_.begin() +
                              static_cast<ptrdiff_t>(at),
                          keptBuf_.end());
                t.keptCount = static_cast<uint32_t>(hs);
            }
        }
    }
}

void
BlockSparsePrefill::runTask(const QBlockTask &t, const Matrix &queries,
                            const Matrix &keys, const Matrix &values,
                            float scale, Matrix &out,
                            PrefillStats &stats) const
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    const size_t B = cfg_.blockTokens;
    const size_t sink_blocks =
        std::min<size_t>((cfg_.sinkTokens + B - 1) / B, t.windowStart);
    ScratchFrame frame(ScratchArena::forThisThread());

    // Assemble the block's attended token list, ascending and
    // duplicate-free: sinks, knob survivors (all < windowStart), then
    // the forced window + frontier region. Every query in the block
    // shares the list; query i attends to its prefix of tokens <= i.
    uint32_t *tokens = frame.alloc<uint32_t>(t.qEnd);
    size_t ntok = 0;
    auto add_block = [&](size_t kb) {
        const size_t tb = kb * B;
        const size_t te = std::min(tb + B, static_cast<size_t>(t.qEnd));
        for (size_t tok = tb; tok < te; ++tok)
            tokens[ntok++] = static_cast<uint32_t>(tok);
    };
    for (size_t kb = 0; kb < sink_blocks; ++kb)
        add_block(kb);
    for (size_t j = 0; j < t.keptCount; ++j)
        add_block(keptBuf_[t.keptOffset + j]);
    for (size_t kb = std::max<size_t>(t.windowStart, sink_blocks);
         kb <= t.block; ++kb)
        add_block(kb);

    float *probs =
        cfg_.estimateOnly ? nullptr : frame.alloc<float>(ntok);
    size_t cut = 0;
    for (size_t i = t.qBegin; i < t.qEnd; ++i) {
        while (cut < ntok && tokens[cut] <= i)
            ++cut;
        if (!cfg_.estimateOnly)
            subsetAttentionInto(queries.row(i), keys, values, tokens,
                                cut, scale, probs, out.row(i));
        stats.attendedTokens += cut;
        stats.denseTokens += i + 1;
    }
}

void
BlockSparsePrefill::advance(const Matrix &queries, const Matrix &keys,
                            const Matrix &values, float scale, size_t upTo,
                            bool flush, Matrix &out)
{
    const size_t B = cfg_.blockTokens;
    LS_ASSERT(upTo <= queries.rows() && upTo <= keys.rows() &&
                  upTo <= values.rows(),
              "prefill advance upTo ", upTo, " beyond stream");
    LS_ASSERT(queries.cols() == headDim_ && keys.cols() == headDim_ &&
                  values.cols() == headDim_,
              "prefill advance head-dim mismatch");
    LS_ASSERT(upTo >= processed_, "prefill stream moved backwards: ",
              upTo, " < ", processed_);

    extendSignatures(keys, upTo / B);

    const size_t end = flush ? upTo : (upTo / B) * B;
    if (end <= processed_)
        return;
    LS_ASSERT(cfg_.estimateOnly ||
                  (out.rows() >= end && out.cols() == headDim_),
              "prefill output matrix too small: ", out.rows(), "x",
              out.cols(), " for ", end, " tokens");

    tasks_.clear();
    for (size_t qs = processed_; qs < end;) {
        const size_t qb = qs / B;
        const size_t qe = std::min((qb + 1) * B, end);
        QBlockTask t;
        t.block = static_cast<uint32_t>(qb);
        t.qBegin = static_cast<uint32_t>(qs);
        t.qEnd = static_cast<uint32_t>(qe);
        t.windowStart = static_cast<uint32_t>(windowStartBlock(qs));
        tasks_.push_back(t);
        qs = qe;
    }

    if (cfg_.mode != PrefillSparsityMode::Dense)
        estimateTasks(queries);

    // Attention inside kept + forced blocks, parallel over Q-blocks:
    // lanes write disjoint out rows and disjoint stats slots, folded
    // serially below — bit-identical at any thread count.
    taskStats_.assign(tasks_.size(), PrefillStats{});
    ThreadPool::global().parallelForEach(
        0, tasks_.size(), [&](size_t ti) {
            // Annotated directly: thread-pool dispatch is opaque to
            // the call-graph walk, so the body is its own root.
            LS_PARALLEL_BODY();
            LS_HOT_PATH();
            LS_DETERMINISTIC();
            LS_NO_LOCK();
            runTask(tasks_[ti], queries, keys, values, scale, out,
                    taskStats_[ti]);
        });

    const size_t sink_blocks = (cfg_.sinkTokens + B - 1) / B;
    for (size_t ti = 0; ti < tasks_.size(); ++ti) {
        const QBlockTask &t = tasks_[ti];
        PrefillStats &s = taskStats_[ti];
        s.qBlocks = 1;
        s.candidateBlocks = t.candidates;
        s.keptBlocks = t.keptCount;
        const size_t forced_sinks =
            std::min<size_t>(sink_blocks, t.windowStart);
        s.forcedBlocks = forced_sinks + (t.block - t.windowStart + 1);
        stats_.merge(s);
        if (cfg_.recordDecisions) {
            PrefillBlockDecision d;
            d.qBlock = t.block;
            d.qBegin = t.qBegin;
            d.qEnd = t.qEnd;
            d.sinkBlocks = static_cast<uint32_t>(forced_sinks);
            d.windowStart = t.windowStart;
            d.candidates = t.candidates;
            d.keptBlocks.assign(
                keptBuf_.begin() + t.keptOffset,
                keptBuf_.begin() + t.keptOffset + t.keptCount);
            decisions_.push_back(std::move(d));
        }
    }
    processed_ = end;
}

void
densePrefillReference(const Matrix &queries, const Matrix &keys,
                      const Matrix &values, float scale, size_t upTo,
                      Matrix &out)
{
    LS_ASSERT(upTo <= queries.rows() && upTo <= keys.rows() &&
                  upTo <= values.rows(),
              "densePrefillReference upTo beyond stream");
    LS_ASSERT(out.rows() >= upTo && out.cols() == values.cols(),
              "densePrefillReference output too small");
    ThreadPool::global().parallelForEach(0, upTo, [&](size_t i) {
        LS_PARALLEL_BODY();
        LS_HOT_PATH();
        LS_DETERMINISTIC();
        LS_NO_LOCK();
        ScratchFrame frame(ScratchArena::forThisThread());
        float *probs = frame.alloc<float>(i + 1);
        batchDotScaleRange(queries.row(i), keys, 0, i + 1, scale, probs);
        softmaxInPlace(probs, i + 1);
        // Ascending accumulation, the exact weightedValueSumInto
        // order, so the subset path at knob = Dense matches bit for
        // bit.
        float *o = out.row(i);
        const size_t hd = values.cols();
        for (size_t d = 0; d < hd; ++d)
            o[d] = 0.0f;
        for (size_t j = 0; j <= i; ++j) {
            const float p = probs[j];
            const float *v = values.row(j);
            for (size_t d = 0; d < hd; ++d)
                o[d] += p * v[d];
        }
    });
}

} // namespace longsight

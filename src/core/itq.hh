/**
 * @file
 * Iterative Quantization (ITQ, Gong & Lazebnik 2011) as used in §5.4:
 * learn an orthogonal rotation R minimizing the one-bit quantization
 * error of key/query vectors so that sign-concordance becomes a better
 * proxy for dot-product similarity. Unlike classical ITQ, the data is
 * *not* centered — the rotation must preserve dot products exactly so
 * scoring can keep using unrotated keys — and, per the paper, training
 * happens on post-RoPE vectors because positional rotation prevents
 * fusing R into the projection weights.
 */

#ifndef LONGSIGHT_CORE_ITQ_HH
#define LONGSIGHT_CORE_ITQ_HH

#include <cstdint>

#include "tensor/tensor.hh"

namespace longsight {

class Rng;

/**
 * Mean per-vector sign-quantization loss ||sign(x R) - x R||^2 of the
 * rotated data (lower is better for SCF fidelity).
 */
double signQuantizationLoss(const Matrix &data, const Matrix &rotation);

/**
 * Train an ITQ rotation on (samples x dim) training data — typically
 * ~1K post-RoPE key and query vectors for one KV head (§5.4).
 *
 * Alternates B = sign(X R) with the orthogonal-Procrustes update
 * R = U W^T for svd(X^T B) = U S W^T; the loss is non-increasing.
 *
 * @param data training vectors, one per row
 * @param iterations alternation count (paper-scale data converges <50)
 * @param rng source for the random orthogonal initialization
 */
Matrix trainItqRotation(const Matrix &data, int iterations, Rng &rng);

} // namespace longsight

#endif // LONGSIGHT_CORE_ITQ_HH

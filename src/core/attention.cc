#include "core/attention.hh"

#include <cmath>

#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "tensor/softmax.hh"
#include "util/logging.hh"

namespace longsight {

std::vector<float>
attentionScores(const float *q, const Matrix &keys, size_t begin, size_t end,
                float scale)
{
    LS_ASSERT(begin <= end && end <= keys.rows(),
              "score range [", begin, ",", end, ") out of ", keys.rows());
    std::vector<float> scores(end - begin);
    batchDotScaleRange(q, keys, begin, end, scale, scores.data());
    return scores;
}

std::vector<float>
attentionScoresAt(const float *q, const Matrix &keys,
                  const std::vector<uint32_t> &indices, float scale)
{
    std::vector<float> scores(indices.size());
    batchDotScaleAt(q, keys, indices.data(), indices.size(), scale,
                    scores.data());
    return scores;
}

AttentionResult
denseAttention(const float *q, const Matrix &keys, const Matrix &values,
               float scale)
{
    AttentionResult r;
    r.probs = attentionScores(q, keys, 0, keys.rows(), scale);
    softmaxInPlace(r.probs);
    r.output.assign(values.cols(), 0.0f);
    for (size_t i = 0; i < keys.rows(); ++i) {
        const float p = r.probs[i];
        const float *v = values.row(i);
        for (size_t d = 0; d < values.cols(); ++d)
            r.output[d] += p * v[d];
    }
    return r;
}

AttentionResult
subsetAttention(const float *q, const Matrix &keys, const Matrix &values,
                const std::vector<uint32_t> &indices, float scale)
{
    AttentionResult r;
    r.probs = attentionScoresAt(q, keys, indices, scale);
    softmaxInPlace(r.probs);
    r.output = weightedValueSum(values, indices, r.probs);
    return r;
}

std::vector<float>
weightedValueSum(const Matrix &values, const std::vector<uint32_t> &indices,
                 const std::vector<float> &probs)
{
    LS_ASSERT(indices.size() == probs.size(),
              "weightedValueSum arity mismatch");
    std::vector<float> out(values.cols(), 0.0f);
    for (size_t j = 0; j < indices.size(); ++j) {
        const float *v = values.row(indices[j]);
        const float p = probs[j];
        for (size_t d = 0; d < values.cols(); ++d)
            out[d] += p * v[d];
    }
    return out;
}

} // namespace longsight

#include "core/attention.hh"

#include <cmath>

#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "tensor/softmax.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

std::vector<float>
attentionScores(const float *q, const Matrix &keys, size_t begin, size_t end,
                float scale)
{
    LS_ASSERT(begin <= end && end <= keys.rows(),
              "score range [", begin, ",", end, ") out of ", keys.rows());
    std::vector<float> scores(end - begin);
    batchDotScaleRange(q, keys, begin, end, scale, scores.data());
    return scores;
}

std::vector<float>
attentionScoresAt(const float *q, const Matrix &keys,
                  const std::vector<uint32_t> &indices, float scale)
{
    std::vector<float> scores(indices.size());
    batchDotScaleAt(q, keys, indices.data(), indices.size(), scale,
                    scores.data());
    return scores;
}

AttentionResult
denseAttention(const float *q, const Matrix &keys, const Matrix &values,
               float scale)
{
    AttentionResult r;
    r.probs.resize(keys.rows());
    r.output.resize(values.cols());
    denseAttentionInto(q, keys, values, scale, r.probs.data(),
                       r.output.data());
    return r;
}

AttentionResult
subsetAttention(const float *q, const Matrix &keys, const Matrix &values,
                const std::vector<uint32_t> &indices, float scale)
{
    AttentionResult r;
    r.probs.resize(indices.size());
    r.output.resize(values.cols());
    subsetAttentionInto(q, keys, values, indices.data(), indices.size(),
                        scale, r.probs.data(), r.output.data());
    return r;
}

std::vector<float>
weightedValueSum(const Matrix &values, const std::vector<uint32_t> &indices,
                 const std::vector<float> &probs)
{
    LS_ASSERT(indices.size() == probs.size(),
              "weightedValueSum arity mismatch");
    std::vector<float> out(values.cols());
    weightedValueSumInto(values, indices.data(), indices.size(),
                         probs.data(), out.data());
    return out;
}

void
denseAttentionInto(const float *q, const Matrix &keys, const Matrix &values,
                   float scale, float *probs, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    batchDotScaleRange(q, keys, 0, keys.rows(), scale, probs);
    softmaxInPlace(probs, keys.rows());
    for (size_t d = 0; d < values.cols(); ++d)
        out[d] = 0.0f;
    for (size_t i = 0; i < keys.rows(); ++i) {
        const float p = probs[i];
        const float *v = values.row(i);
        for (size_t d = 0; d < values.cols(); ++d)
            out[d] += p * v[d];
    }
}

void
subsetAttentionInto(const float *q, const Matrix &keys, const Matrix &values,
                    const uint32_t *indices, size_t count, float scale,
                    float *probs, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    batchDotScaleAt(q, keys, indices, count, scale, probs);
    softmaxInPlace(probs, count);
    weightedValueSumInto(values, indices, count, probs, out);
}

void
weightedValueSumInto(const Matrix &values, const uint32_t *indices,
                     size_t count, const float *probs, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    for (size_t d = 0; d < values.cols(); ++d)
        out[d] = 0.0f;
    for (size_t j = 0; j < count; ++j) {
        const float *v = values.row(indices[j]);
        const float p = probs[j];
        for (size_t d = 0; d < values.cols(); ++d)
            out[d] += p * v[d];
    }
}

} // namespace longsight

#include "core/attention.hh"

#include <algorithm>
#include <cmath>

#include "core/kv_cache.hh"
#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "tensor/softmax.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

std::vector<float>
attentionScores(const float *q, const Matrix &keys, size_t begin, size_t end,
                float scale)
{
    LS_ASSERT(begin <= end && end <= keys.rows(),
              "score range [", begin, ",", end, ") out of ", keys.rows());
    std::vector<float> scores(end - begin);
    batchDotScaleRange(q, keys, begin, end, scale, scores.data());
    return scores;
}

std::vector<float>
attentionScoresAt(const float *q, const Matrix &keys,
                  const std::vector<uint32_t> &indices, float scale)
{
    std::vector<float> scores(indices.size());
    batchDotScaleAt(q, keys, indices.data(), indices.size(), scale,
                    scores.data());
    return scores;
}

AttentionResult
denseAttention(const float *q, const Matrix &keys, const Matrix &values,
               float scale)
{
    AttentionResult r;
    r.probs.resize(keys.rows());
    r.output.resize(values.cols());
    denseAttentionInto(q, keys, values, scale, r.probs.data(),
                       r.output.data());
    return r;
}

AttentionResult
subsetAttention(const float *q, const Matrix &keys, const Matrix &values,
                const std::vector<uint32_t> &indices, float scale)
{
    AttentionResult r;
    r.probs.resize(indices.size());
    r.output.resize(values.cols());
    subsetAttentionInto(q, keys, values, indices.data(), indices.size(),
                        scale, r.probs.data(), r.output.data());
    return r;
}

std::vector<float>
weightedValueSum(const Matrix &values, const std::vector<uint32_t> &indices,
                 const std::vector<float> &probs)
{
    LS_ASSERT(indices.size() == probs.size(),
              "weightedValueSum arity mismatch");
    std::vector<float> out(values.cols());
    weightedValueSumInto(values, indices.data(), indices.size(),
                         probs.data(), out.data());
    return out;
}

void
denseAttentionInto(const float *q, const Matrix &keys, const Matrix &values,
                   float scale, float *probs, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    batchDotScaleRange(q, keys, 0, keys.rows(), scale, probs);
    softmaxInPlace(probs, keys.rows());
    for (size_t d = 0; d < values.cols(); ++d)
        out[d] = 0.0f;
    for (size_t i = 0; i < keys.rows(); ++i) {
        const float p = probs[i];
        const float *v = values.row(i);
        for (size_t d = 0; d < values.cols(); ++d)
            out[d] += p * v[d];
    }
}

void
subsetAttentionInto(const float *q, const Matrix &keys, const Matrix &values,
                    const uint32_t *indices, size_t count, float scale,
                    float *probs, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    batchDotScaleAt(q, keys, indices, count, scale, probs);
    softmaxInPlace(probs, count);
    weightedValueSumInto(values, indices, count, probs, out);
}

void
denseAttentionInto(const float *q, const KvCache &cache, float scale,
                   float *probs, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    if (!cache.paged()) {
        denseAttentionInto(q, cache.keys(), cache.values(), scale, probs,
                           out);
        return;
    }
    const size_t n = cache.size();
    const Matrix &keys = cache.keysStorage();
    const Matrix &values = cache.valuesStorage();
    // Score and accumulate span by span in ascending logical order:
    // each token's dot and its probs-weighted add happen in exactly
    // the sequence the contiguous path uses, so the result is
    // bit-identical for any block size.
    for (size_t at = 0; at < n;) {
        const ScanSpan sp = cache.spanAt(at, n);
        batchDotScaleRange(q, keys, sp.physBegin, sp.physBegin + sp.count,
                           scale, probs + sp.logicalBase);
        at += sp.count;
    }
    softmaxInPlace(probs, n);
    for (size_t d = 0; d < values.cols(); ++d)
        out[d] = 0.0f;
    for (size_t at = 0; at < n;) {
        const ScanSpan sp = cache.spanAt(at, n);
        for (size_t i = 0; i < sp.count; ++i) {
            const float p = probs[sp.logicalBase + i];
            const float *v = values.row(sp.physBegin + i);
            for (size_t d = 0; d < values.cols(); ++d)
                out[d] += p * v[d];
        }
        at += sp.count;
    }
}

void
subsetAttentionInto(const float *q, const KvCache &cache,
                    const uint32_t *indices, size_t count, float scale,
                    float *probs, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    if (!cache.paged()) {
        subsetAttentionInto(q, cache.keys(), cache.values(), indices,
                            count, scale, probs, out);
        return;
    }
    const Matrix &keys = cache.keysStorage();
    const Matrix &values = cache.valuesStorage();
    // Logical -> physical translation through a bounded stack chunk
    // keeps the gather path allocation-free; scores, softmax and the
    // weighted sum all run in the caller's index order regardless of
    // where the chunk boundaries fall.
    constexpr size_t kChunk = 512;
    uint32_t phys[kChunk];
    for (size_t at = 0; at < count; at += kChunk) {
        const size_t m = std::min(kChunk, count - at);
        cache.mapToPhysical(indices + at, m, phys);
        batchDotScaleAt(q, keys, phys, m, scale, probs + at);
    }
    softmaxInPlace(probs, count);
    for (size_t d = 0; d < values.cols(); ++d)
        out[d] = 0.0f;
    for (size_t at = 0; at < count; at += kChunk) {
        const size_t m = std::min(kChunk, count - at);
        cache.mapToPhysical(indices + at, m, phys);
        for (size_t j = 0; j < m; ++j) {
            const float p = probs[at + j];
            const float *v = values.row(phys[j]);
            for (size_t d = 0; d < values.cols(); ++d)
                out[d] += p * v[d];
        }
    }
}

void
weightedValueSumInto(const Matrix &values, const uint32_t *indices,
                     size_t count, const float *probs, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    for (size_t d = 0; d < values.cols(); ++d)
        out[d] = 0.0f;
    for (size_t j = 0; j < count; ++j) {
        const float *v = values.row(indices[j]);
        const float p = probs[j];
        for (size_t d = 0; d < values.cols(); ++d)
            out[d] += p * v[d];
    }
}

} // namespace longsight

#include "core/multi_head.hh"

#include "util/annotations.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace longsight {

MultiHeadLongSight::MultiHeadLongSight(const LongSightConfig &cfg,
                                       uint32_t num_query_heads,
                                       uint32_t num_kv_heads,
                                       uint32_t head_dim)
    : attn_(cfg, num_kv_heads), numQueryHeads_(num_query_heads),
      headDim_(head_dim)
{
    LS_ASSERT(num_query_heads % num_kv_heads == 0,
              "query heads (", num_query_heads,
              ") must be a multiple of KV heads (", num_kv_heads, ")");
}

LayerAttentionResult
MultiHeadLongSight::compute(const Matrix &queries,
                            const std::vector<KvCache> &caches) const
{
    LayerAttentionResult r;
    computeInto(queries, caches, r);
    return r;
}

void
MultiHeadLongSight::computeInto(const Matrix &queries,
                                const std::vector<KvCache> &caches,
                                LayerAttentionResult &r) const
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(queries.rows() == numQueryHeads_ &&
                  queries.cols() == headDim_,
              "query matrix must be numQueryHeads x headDim");
    LS_ASSERT(caches.size() == numKvHeads(),
              "need one KV cache per KV head");

    // LS_LINT_ALLOW(alloc): result capacity persists across steps
    r.outputs.resize(numQueryHeads_, headDim_);
    r.stats = FilterStats{};
    // LS_LINT_ALLOW(alloc): result capacity persists across steps
    r.perQuery.resize(numQueryHeads_);
    const uint32_t group = groupSize();

    // One work item per KV HEAD, not per query head: the item's whole
    // GQA group shares that head's cache, so computeGroupInto streams
    // the packed sign rows and survivor key tiles through all `group`
    // queries in one pass instead of scanning the cache `group` times.
    // Each item writes only its group's contiguous result slots; stats
    // are merged serially afterwards in fixed head order, so the
    // result is bit-identical for any thread count.
    ThreadPool::global().parallelForEach(0, numKvHeads(), [&](size_t h) {
        // Annotated directly: pool dispatch is opaque to the lint walk.
        LS_PARALLEL_BODY();
        LS_HOT_PATH();
        LS_DETERMINISTIC();
        LS_NO_LOCK();
        attn_.computeGroupInto(queries.row(h * group), queries.cols(),
                               group, caches[h],
                               static_cast<uint32_t>(h),
                               r.perQuery.data() + h * group);
    });
    for (uint32_t q = 0; q < numQueryHeads_; ++q) {
        r.outputs.setRow(q, r.perQuery[q].output.data());
        LongSightAttn::recordStats(r.perQuery[q], r.stats);
    }
}

} // namespace longsight

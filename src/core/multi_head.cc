#include "core/multi_head.hh"

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace longsight {

MultiHeadLongSight::MultiHeadLongSight(const LongSightConfig &cfg,
                                       uint32_t num_query_heads,
                                       uint32_t num_kv_heads,
                                       uint32_t head_dim)
    : attn_(cfg, num_kv_heads), numQueryHeads_(num_query_heads),
      headDim_(head_dim)
{
    LS_ASSERT(num_query_heads % num_kv_heads == 0,
              "query heads (", num_query_heads,
              ") must be a multiple of KV heads (", num_kv_heads, ")");
}

LayerAttentionResult
MultiHeadLongSight::compute(const Matrix &queries,
                            const std::vector<KvCache> &caches) const
{
    LayerAttentionResult r;
    computeInto(queries, caches, r);
    return r;
}

void
MultiHeadLongSight::computeInto(const Matrix &queries,
                                const std::vector<KvCache> &caches,
                                LayerAttentionResult &r) const
{
    LS_ASSERT(queries.rows() == numQueryHeads_ &&
                  queries.cols() == headDim_,
              "query matrix must be numQueryHeads x headDim");
    LS_ASSERT(caches.size() == numKvHeads(),
              "need one KV cache per KV head");

    r.outputs.resize(numQueryHeads_, headDim_);
    r.stats = FilterStats{};
    r.perQuery.resize(numQueryHeads_);
    const uint32_t group = groupSize();

    // Query heads are independent: each reads its group's cache and
    // writes its own slot (computeHeadInto refills the slot's buffers
    // in place). Stats are merged serially afterwards in fixed head
    // order, so the result is bit-identical for any thread count.
    ThreadPool::global().parallelForEach(0, numQueryHeads_, [&](size_t q) {
        const uint32_t kv_head = static_cast<uint32_t>(q) / group;
        attn_.computeHeadInto(queries.row(q), caches[kv_head], kv_head,
                              r.perQuery[q]);
    });
    for (uint32_t q = 0; q < numQueryHeads_; ++q) {
        r.outputs.setRow(q, r.perQuery[q].output.data());
        LongSightAttn::recordStats(r.perQuery[q], r.stats);
    }
}

} // namespace longsight

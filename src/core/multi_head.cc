#include "core/multi_head.hh"

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace longsight {

MultiHeadLongSight::MultiHeadLongSight(const LongSightConfig &cfg,
                                       uint32_t num_query_heads,
                                       uint32_t num_kv_heads,
                                       uint32_t head_dim)
    : attn_(cfg, num_kv_heads), numQueryHeads_(num_query_heads),
      headDim_(head_dim)
{
    LS_ASSERT(num_query_heads % num_kv_heads == 0,
              "query heads (", num_query_heads,
              ") must be a multiple of KV heads (", num_kv_heads, ")");
}

LayerAttentionResult
MultiHeadLongSight::compute(const Matrix &queries,
                            const std::vector<KvCache> &caches) const
{
    LS_ASSERT(queries.rows() == numQueryHeads_ &&
                  queries.cols() == headDim_,
              "query matrix must be numQueryHeads x headDim");
    LS_ASSERT(caches.size() == numKvHeads(),
              "need one KV cache per KV head");

    LayerAttentionResult r;
    r.outputs.resize(numQueryHeads_, headDim_);
    r.perQuery.reserve(numQueryHeads_);
    const uint32_t group = groupSize();

    // Query heads are independent: each reads its group's cache and
    // writes its own slot. Stats are merged serially afterwards in
    // fixed head order, so the result is bit-identical for any thread
    // count.
    std::vector<HeadAttentionResult> heads(numQueryHeads_);
    ThreadPool::global().parallelFor(0, numQueryHeads_, [&](size_t q) {
        const uint32_t kv_head = static_cast<uint32_t>(q) / group;
        heads[q] = attn_.computeHead(queries.rowVec(q), caches[kv_head],
                                     kv_head);
    });
    for (uint32_t q = 0; q < numQueryHeads_; ++q) {
        r.outputs.setRow(q, heads[q].output.data());
        LongSightAttn::recordStats(heads[q], r.stats);
        r.perQuery.push_back(std::move(heads[q]));
    }
    return r;
}

} // namespace longsight

#include "core/multi_head.hh"

#include "util/logging.hh"

namespace longsight {

MultiHeadLongSight::MultiHeadLongSight(const LongSightConfig &cfg,
                                       uint32_t num_query_heads,
                                       uint32_t num_kv_heads,
                                       uint32_t head_dim)
    : attn_(cfg, num_kv_heads), numQueryHeads_(num_query_heads),
      headDim_(head_dim)
{
    LS_ASSERT(num_query_heads % num_kv_heads == 0,
              "query heads (", num_query_heads,
              ") must be a multiple of KV heads (", num_kv_heads, ")");
}

LayerAttentionResult
MultiHeadLongSight::compute(const Matrix &queries,
                            const std::vector<KvCache> &caches) const
{
    LS_ASSERT(queries.rows() == numQueryHeads_ &&
                  queries.cols() == headDim_,
              "query matrix must be numQueryHeads x headDim");
    LS_ASSERT(caches.size() == numKvHeads(),
              "need one KV cache per KV head");

    LayerAttentionResult r;
    r.outputs.resize(numQueryHeads_, headDim_);
    r.perQuery.reserve(numQueryHeads_);
    const uint32_t group = groupSize();
    for (uint32_t q = 0; q < numQueryHeads_; ++q) {
        const uint32_t kv_head = q / group;
        HeadAttentionResult head =
            attn_.computeHead(queries.rowVec(q), caches[kv_head], kv_head);
        r.outputs.setRow(q, head.output.data());
        LongSightAttn::recordStats(head, r.stats);
        r.perQuery.push_back(std::move(head));
    }
    return r;
}

} // namespace longsight

#include "core/topk.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

std::vector<ScoredIndex>
topkSelect(const std::vector<float> &scores,
           const std::vector<uint32_t> &indices, size_t k)
{
    LS_ASSERT(scores.size() == indices.size(),
              "topkSelect parallel array mismatch");
    std::vector<ScoredIndex> all(scores.size());
    for (size_t i = 0; i < scores.size(); ++i)
        all[i] = ScoredIndex{scores[i], indices[i]};

    const size_t keep = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                      [](const ScoredIndex &a, const ScoredIndex &b) {
                          return a.betterThan(b);
                      });
    all.resize(keep);
    return all;
}

TopK::TopK(size_t k) : k_(k)
{
    LS_ASSERT(k > 0, "TopK capacity must be positive");
    heap_.reserve(k);
}

void
TopK::push(float score, uint32_t index)
{
    const size_t old = heap_.size();
    if (old < k_)
        heap_.resize(old + 1); // room for the insert path
    const size_t n = topk_heap::push(heap_.data(), old, k_,
                                     ScoredIndex{score, index});
    heap_.resize(n);
}

void
TopK::merge(const TopK &other)
{
    // Self-merge is a no-op: pushing into heap_ while iterating it
    // would invalidate the iterator on reallocation.
    if (&other == this)
        return;
    for (const auto &e : other.heap_)
        push(e.score, e.index);
}

float
TopK::worstRetained() const
{
    LS_ASSERT(!heap_.empty(), "worstRetained on empty TopK");
    return heap_[0].score;
}

std::vector<ScoredIndex>
TopK::sortedResults() const
{
    std::vector<ScoredIndex> out = heap_;
    std::sort(out.begin(), out.end(),
              [](const ScoredIndex &a, const ScoredIndex &b) {
                  return a.betterThan(b);
              });
    return out;
}

size_t
TopK::drainSorted(ScoredIndex *out)
{
    const size_t n = heap_.size();
    std::copy(heap_.begin(), heap_.end(), out);
    topk_heap::sortBestFirst(out, n);
    heap_.clear(); // capacity stays; the accumulator is reusable
    return n;
}

} // namespace longsight

#include "core/topk.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

std::vector<ScoredIndex>
topkSelect(const std::vector<float> &scores,
           const std::vector<uint32_t> &indices, size_t k)
{
    LS_ASSERT(scores.size() == indices.size(),
              "topkSelect parallel array mismatch");
    std::vector<ScoredIndex> all(scores.size());
    for (size_t i = 0; i < scores.size(); ++i)
        all[i] = ScoredIndex{scores[i], indices[i]};

    const size_t keep = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                      [](const ScoredIndex &a, const ScoredIndex &b) {
                          return a.betterThan(b);
                      });
    all.resize(keep);
    return all;
}

TopK::TopK(size_t k) : k_(k)
{
    LS_ASSERT(k > 0, "TopK capacity must be positive");
    heap_.reserve(k);
}

bool
TopK::worse(const ScoredIndex &a, const ScoredIndex &b)
{
    return b.betterThan(a);
}

void
TopK::push(float score, uint32_t index)
{
    const ScoredIndex cand{score, index};
    if (heap_.size() < k_) {
        heap_.push_back(cand);
        siftUp(heap_.size() - 1);
        return;
    }
    if (cand.betterThan(heap_[0])) {
        heap_[0] = cand;
        siftDown(0);
    }
}

void
TopK::merge(const TopK &other)
{
    // Self-merge is a no-op: pushing into heap_ while iterating it
    // would invalidate the iterator on reallocation.
    if (&other == this)
        return;
    for (const auto &e : other.heap_)
        push(e.score, e.index);
}

float
TopK::worstRetained() const
{
    LS_ASSERT(!heap_.empty(), "worstRetained on empty TopK");
    return heap_[0].score;
}

std::vector<ScoredIndex>
TopK::sortedResults() const
{
    std::vector<ScoredIndex> out = heap_;
    std::sort(out.begin(), out.end(),
              [](const ScoredIndex &a, const ScoredIndex &b) {
                  return a.betterThan(b);
              });
    return out;
}

void
TopK::siftUp(size_t i)
{
    while (i > 0) {
        const size_t parent = (i - 1) / 2;
        if (!worse(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
TopK::siftDown(size_t i)
{
    for (;;) {
        const size_t l = 2 * i + 1;
        const size_t r = 2 * i + 2;
        size_t smallest = i;
        if (l < heap_.size() && worse(heap_[l], heap_[smallest]))
            smallest = l;
        if (r < heap_.size() && worse(heap_[r], heap_[smallest]))
            smallest = r;
        if (smallest == i)
            break;
        std::swap(heap_[i], heap_[smallest]);
        i = smallest;
    }
}

} // namespace longsight

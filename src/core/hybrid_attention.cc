#include "core/hybrid_attention.hh"

#include <algorithm>
#include <cmath>

#include "core/attention.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "util/annotations.hh"
#include "util/logging.hh"
#include "util/scratch_arena.hh"

namespace longsight {

LongSightAttn::LongSightAttn(LongSightConfig cfg, uint32_t num_kv_heads)
    : cfg_(cfg), numKvHeads_(num_kv_heads),
      thresholds_(num_kv_heads, cfg.defaultThreshold)
{
    LS_ASSERT(num_kv_heads > 0, "need at least one KV head");
    LS_ASSERT(cfg.topK > 0, "top-k must be positive");
}

void
LongSightAttn::setThreshold(uint32_t kv_head, int threshold)
{
    LS_ASSERT(kv_head < numKvHeads_, "KV head ", kv_head, " out of range");
    thresholds_[kv_head] = threshold;
}

void
LongSightAttn::setAllThresholds(const std::vector<int> &thresholds)
{
    LS_ASSERT(thresholds.size() == numKvHeads_,
              "threshold vector size mismatch");
    thresholds_ = thresholds;
}

int
LongSightAttn::threshold(uint32_t kv_head) const
{
    LS_ASSERT(kv_head < numKvHeads_, "KV head ", kv_head, " out of range");
    return thresholds_[kv_head];
}

void
LongSightAttn::densePartition(size_t n, size_t &sinks,
                              size_t &win_start) const
{
    sinks = std::min<size_t>(cfg_.sinkTokens, n);
    win_start = n > cfg_.windowSize ? n - cfg_.windowSize : 0;
    // The window never reaches into the sink prefix.
    win_start = std::max(win_start, sinks);
}

HeadAttentionResult
LongSightAttn::computeHead(const std::vector<float> &q, const KvCache &cache,
                           uint32_t kv_head) const
{
    LS_ASSERT(q.size() == cache.headDim(), "query dim mismatch");
    HeadAttentionResult r;
    computeHeadInto(q.data(), cache, kv_head, r);
    return r;
}

void
LongSightAttn::computeHeadInto(const float *q, const KvCache &cache,
                               uint32_t kv_head,
                               HeadAttentionResult &r) const
{
    // The group path with one query IS the single-query path: the
    // multi-query kernels degenerate to the single-query scan/select
    // order, so there is exactly one implementation to keep correct.
    computeGroupInto(q, cache.headDim(), 1, cache, kv_head, &r);
}

void
LongSightAttn::computeGroupInto(const float *queries, size_t query_stride,
                                uint32_t num_queries, const KvCache &cache,
                                uint32_t kv_head,
                                HeadAttentionResult *rs) const
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    const size_t n = cache.size();
    LS_ASSERT(n > 0, "attention over an empty context");
    LS_ASSERT(num_queries > 0, "attention needs at least one query");

    const size_t dim = cache.headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));

    size_t sinks, win_start;
    densePartition(n, sinks, win_start);
    const size_t sparse_raw = win_start - sinks;

    ScratchFrame frame(ScratchArena::forThisThread());

    // The attended set is built from three disjoint sources, each
    // already ascending: the sink prefix [0, sinks), the selected
    // sparse tokens (a subset of [sinks, win_start)), and the window
    // [win_start, n). Concatenating them in that order — with only the
    // small selected segment sorted by index — replaces the old
    // sort+unique over the whole list.
    for (uint32_t g = 0; g < num_queries; ++g) {
        HeadAttentionResult &r = rs[g];
        r.attended.clear();
        r.sparseRaw = sparse_raw;
        r.sparseSurvivors = r.sparseSelected = 0;
        r.usedSparse = sparse_raw > 0;
        for (size_t i = 0; i < sinks; ++i)
            // LS_LINT_ALLOW(alloc): result slot capacity persists across steps
            r.attended.push_back(static_cast<uint32_t>(i));
    }

    if (sparse_raw > 0) {
        const int th = thresholds_[kv_head];
        const size_t wpr = (dim + 63) / 64;

        // Filter-space projections and packed signs for the whole
        // group, in scratch (a SignBits would heap-allocate).
        float *qf = frame.alloc<float>(dim);
        uint64_t *q_words = frame.alloc<uint64_t>(num_queries * wpr);
        for (uint32_t g = 0; g < num_queries; ++g) {
            cache.toFilterSpace(queries + g * query_stride, qf);
            packSigns(qf, dim, q_words + g * wpr);
        }

        const size_t kcap = std::min<size_t>(cfg_.topK, sparse_raw);
        ScoredIndex *selected =
            frame.alloc<ScoredIndex>(num_queries * kcap);
        size_t *nsel = frame.alloc<size_t>(num_queries);

        // The filter region as physical spans (a paged cache's block
        // table; the single identity span when flat) — both branches
        // route through the span drivers, so flat and paged layouts
        // run the same code and stay element-identical.
        ScanSpan *spans =
            frame.alloc<ScanSpan>(cache.maxSpans(sinks, win_start));
        const size_t nspans = cache.collectSpans(sinks, win_start, spans);
        size_t *span_surv = frame.alloc<size_t>(nspans);
        const SignMatrix &fsigns = cache.filterSignsStorage();

        if (cfg_.quantizedScoring && cache.keysQuantized()) {
            // INT8 scoring reads keys through the cache's quantized
            // store, which the fused kernel's dot ops cannot; scan the
            // whole group's survivors in one pass over the sign rows,
            // then heap-select per query. Same ordering contract
            // (topk_heap), same per-query results as the single-query
            // formulation. Survivors arrive as LOGICAL token ids, so
            // scoreKey translates through the block table itself.
            uint32_t *survivors =
                frame.alloc<uint32_t>(num_queries * sparse_raw);
            size_t *counts = frame.alloc<size_t>(num_queries);
            batchScanMultiSpans(q_words, num_queries, fsigns, spans,
                                nspans, th, survivors, sparse_raw, counts,
                                span_surv);
            for (uint32_t g = 0; g < num_queries; ++g) {
                const float *q = queries + g * query_stride;
                const uint32_t *surv = survivors + g * sparse_raw;
                ScoredIndex *heap = selected + g * kcap;
                size_t hs = 0;
                rs[g].sparseSurvivors = counts[g];
                for (size_t j = 0; j < counts[g]; ++j) {
                    const float s = cache.scoreKey(q, surv[j]) * scale;
                    hs = topk_heap::push(heap, hs, cfg_.topK,
                                         ScoredIndex{s, surv[j]});
                }
                topk_heap::sortBestFirst(heap, hs);
                nsel[g] = hs;
            }
        } else {
            // Fused SCF → score → select for the whole group: the sign
            // rows and survivor key tiles are read once and stream
            // through every query's concordance test and top-k heap.
            size_t *nsurv = frame.alloc<size_t>(num_queries);
            batchScoreSelectMultiSpans(q_words, num_queries, fsigns,
                                       spans, nspans, th, queries,
                                       query_stride, cache.keysStorage(),
                                       scale, cfg_.topK, selected, kcap,
                                       nsel, nsurv, span_surv);
            for (uint32_t g = 0; g < num_queries; ++g)
                rs[g].sparseSurvivors = nsurv[g];
        }

        // Credit the pass to the pool's SCF residency counters: blocks
        // whose keys keep surviving the filter earn the HBM window.
        if (cache.paged())
            for (size_t si = 0; si < nspans; ++si)
                cache.recordFilterScan(spans[si],
                                       uint64_t{num_queries} *
                                           spans[si].count,
                                       span_surv[si]);

        for (uint32_t g = 0; g < num_queries; ++g) {
            HeadAttentionResult &r = rs[g];
            const ScoredIndex *sel = selected + g * kcap;
            r.sparseSelected = nsel[g];
            const size_t mid = r.attended.size();
            for (size_t j = 0; j < nsel[g]; ++j)
                // LS_LINT_ALLOW(alloc): result slot capacity persists across steps
                r.attended.push_back(sel[j].index);
            // Score order -> index order; only this (<= k) segment
            // needs the sort.
            std::sort(r.attended.begin() + mid, r.attended.end());
        }
    }

    for (uint32_t g = 0; g < num_queries; ++g) {
        HeadAttentionResult &r = rs[g];
        for (size_t i = win_start; i < n; ++i)
            // LS_LINT_ALLOW(alloc): result slot capacity persists across steps
            r.attended.push_back(static_cast<uint32_t>(i));

        // Degenerate guard: nothing survived anywhere (possible only
        // with W = 0, no sinks, and a maximal threshold) — attend the
        // most recent token so the softmax stays well-defined.
        if (r.attended.empty())
            // LS_LINT_ALLOW(alloc): result slot capacity persists across steps
            r.attended.push_back(static_cast<uint32_t>(n - 1));

        // GPU-side combined softmax and SV accumulation (Fig. 2b
        // (5)-(7)). Probabilities are scratch, reclaimed per query so
        // the group's peak does not scale with num_queries; the output
        // vector is the caller's.
        ScratchFrame probs_frame(frame.arena());
        float *probs = probs_frame.alloc<float>(r.attended.size());
        // LS_LINT_ALLOW(alloc): fixed dim; capacity persists after step one
        r.output.resize(dim);
        subsetAttentionInto(queries + g * query_stride, cache,
                            r.attended.data(), r.attended.size(), scale,
                            probs, r.output.data());
    }
}

void
LongSightAttn::recordStats(const HeadAttentionResult &r, FilterStats &fs)
{
    if (r.usedSparse)
        fs.record(r.sparseRaw, r.sparseSurvivors, r.sparseSelected);
}

} // namespace longsight

#include "core/hybrid_attention.hh"

#include <algorithm>
#include <cmath>

#include "core/attention.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "util/annotations.hh"
#include "util/logging.hh"
#include "util/scratch_arena.hh"

namespace longsight {

LongSightAttn::LongSightAttn(LongSightConfig cfg, uint32_t num_kv_heads)
    : cfg_(cfg), numKvHeads_(num_kv_heads),
      thresholds_(num_kv_heads, cfg.defaultThreshold)
{
    LS_ASSERT(num_kv_heads > 0, "need at least one KV head");
    LS_ASSERT(cfg.topK > 0, "top-k must be positive");
}

void
LongSightAttn::setThreshold(uint32_t kv_head, int threshold)
{
    LS_ASSERT(kv_head < numKvHeads_, "KV head ", kv_head, " out of range");
    thresholds_[kv_head] = threshold;
}

void
LongSightAttn::setAllThresholds(const std::vector<int> &thresholds)
{
    LS_ASSERT(thresholds.size() == numKvHeads_,
              "threshold vector size mismatch");
    thresholds_ = thresholds;
}

int
LongSightAttn::threshold(uint32_t kv_head) const
{
    LS_ASSERT(kv_head < numKvHeads_, "KV head ", kv_head, " out of range");
    return thresholds_[kv_head];
}

void
LongSightAttn::densePartition(size_t n, size_t &sinks,
                              size_t &win_start) const
{
    sinks = std::min<size_t>(cfg_.sinkTokens, n);
    win_start = n > cfg_.windowSize ? n - cfg_.windowSize : 0;
    // The window never reaches into the sink prefix.
    win_start = std::max(win_start, sinks);
}

HeadAttentionResult
LongSightAttn::computeHead(const std::vector<float> &q, const KvCache &cache,
                           uint32_t kv_head) const
{
    LS_ASSERT(q.size() == cache.headDim(), "query dim mismatch");
    HeadAttentionResult r;
    computeHeadInto(q.data(), cache, kv_head, r);
    return r;
}

void
LongSightAttn::computeHeadInto(const float *q, const KvCache &cache,
                               uint32_t kv_head,
                               HeadAttentionResult &r) const
{
    // The group path with one query IS the single-query path: the
    // multi-query kernels degenerate to the single-query scan/select
    // order, so there is exactly one implementation to keep correct.
    computeGroupInto(q, cache.headDim(), 1, cache, kv_head, &r);
}

void
LongSightAttn::computeGroupInto(const float *queries, size_t query_stride,
                                uint32_t num_queries, const KvCache &cache,
                                uint32_t kv_head,
                                HeadAttentionResult *rs) const
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    const size_t n = cache.size();
    LS_ASSERT(n > 0, "attention over an empty context");
    LS_ASSERT(num_queries > 0, "attention needs at least one query");

    const size_t dim = cache.headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));

    size_t sinks, win_start;
    densePartition(n, sinks, win_start);
    const size_t sparse_raw = win_start - sinks;

    ScratchFrame frame(ScratchArena::forThisThread());

    // The attended set is built from three disjoint sources, each
    // already ascending: the sink prefix [0, sinks), the selected
    // sparse tokens (a subset of [sinks, win_start)), and the window
    // [win_start, n). Concatenating them in that order — with only the
    // small selected segment sorted by index — replaces the old
    // sort+unique over the whole list.
    for (uint32_t g = 0; g < num_queries; ++g) {
        HeadAttentionResult &r = rs[g];
        r.attended.clear();
        r.sparseRaw = sparse_raw;
        r.sparseSurvivors = r.sparseSelected = 0;
        r.usedSparse = sparse_raw > 0;
        for (size_t i = 0; i < sinks; ++i)
            // LS_LINT_ALLOW(alloc): result slot capacity persists across steps
            r.attended.push_back(static_cast<uint32_t>(i));
    }

    if (sparse_raw > 0) {
        // The whole estimation → score → select decision lives behind
        // the pluggable FilterBackend (core/filter_backend.hh): this
        // module only partitions the context, supplies scratch, and
        // merges the selected ids. FilterKind::Scf reproduces the
        // pre-pluggable pipeline bit-exactly.
        const size_t kcap = std::min<size_t>(cfg_.topK, sparse_raw);
        ScoredIndex *selected =
            frame.alloc<ScoredIndex>(num_queries * kcap);
        size_t *nsel = frame.alloc<size_t>(num_queries);
        size_t *nsurv = frame.alloc<size_t>(num_queries);

        FilterArgs fa;
        fa.queries = queries;
        fa.queryStride = query_stride;
        fa.numQueries = num_queries;
        fa.cache = &cache;
        fa.lo = sinks;
        fa.hi = win_start;
        fa.threshold = thresholds_[kv_head];
        fa.scale = scale;
        fa.k = cfg_.topK;
        fa.kcap = kcap;
        fa.quantizedScoring = cfg_.quantizedScoring;
        fa.centroidBlockTokens = cfg_.centroidBlockTokens;
        fa.centroidKeepFraction = cfg_.centroidKeepFraction;

        const FilterSelection sel_out{selected, nsel, nsurv};
        filterBackendFor(cfg_.filter).select(fa, frame, sel_out);

        for (uint32_t g = 0; g < num_queries; ++g) {
            HeadAttentionResult &r = rs[g];
            const ScoredIndex *sel = selected + g * kcap;
            r.sparseSurvivors = nsurv[g];
            r.sparseSelected = nsel[g];
            const size_t mid = r.attended.size();
            for (size_t j = 0; j < nsel[g]; ++j)
                // LS_LINT_ALLOW(alloc): result slot capacity persists across steps
                r.attended.push_back(sel[j].index);
            // Score order -> index order; only this (<= k) segment
            // needs the sort.
            std::sort(r.attended.begin() + mid, r.attended.end());
        }
    }

    for (uint32_t g = 0; g < num_queries; ++g) {
        HeadAttentionResult &r = rs[g];
        for (size_t i = win_start; i < n; ++i)
            // LS_LINT_ALLOW(alloc): result slot capacity persists across steps
            r.attended.push_back(static_cast<uint32_t>(i));

        // Degenerate guard: nothing survived anywhere (possible only
        // with W = 0, no sinks, and a maximal threshold) — attend the
        // most recent token so the softmax stays well-defined.
        if (r.attended.empty())
            // LS_LINT_ALLOW(alloc): result slot capacity persists across steps
            r.attended.push_back(static_cast<uint32_t>(n - 1));

        // GPU-side combined softmax and SV accumulation (Fig. 2b
        // (5)-(7)). Probabilities are scratch, reclaimed per query so
        // the group's peak does not scale with num_queries; the output
        // vector is the caller's.
        ScratchFrame probs_frame(frame.arena());
        float *probs = probs_frame.alloc<float>(r.attended.size());
        // LS_LINT_ALLOW(alloc): fixed dim; capacity persists after step one
        r.output.resize(dim);
        subsetAttentionInto(queries + g * query_stride, cache,
                            r.attended.data(), r.attended.size(), scale,
                            probs, r.output.data());
    }
}

void
LongSightAttn::recordStats(const HeadAttentionResult &r, FilterStats &fs)
{
    if (r.usedSparse)
        fs.record(r.sparseRaw, r.sparseSurvivors, r.sparseSelected);
}

} // namespace longsight

#include "core/hybrid_attention.hh"

#include <algorithm>
#include <cmath>

#include "core/attention.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "util/logging.hh"
#include "util/scratch_arena.hh"

namespace longsight {

LongSightAttn::LongSightAttn(LongSightConfig cfg, uint32_t num_kv_heads)
    : cfg_(cfg), numKvHeads_(num_kv_heads),
      thresholds_(num_kv_heads, cfg.defaultThreshold)
{
    LS_ASSERT(num_kv_heads > 0, "need at least one KV head");
    LS_ASSERT(cfg.topK > 0, "top-k must be positive");
}

void
LongSightAttn::setThreshold(uint32_t kv_head, int threshold)
{
    LS_ASSERT(kv_head < numKvHeads_, "KV head ", kv_head, " out of range");
    thresholds_[kv_head] = threshold;
}

void
LongSightAttn::setAllThresholds(const std::vector<int> &thresholds)
{
    LS_ASSERT(thresholds.size() == numKvHeads_,
              "threshold vector size mismatch");
    thresholds_ = thresholds;
}

int
LongSightAttn::threshold(uint32_t kv_head) const
{
    LS_ASSERT(kv_head < numKvHeads_, "KV head ", kv_head, " out of range");
    return thresholds_[kv_head];
}

void
LongSightAttn::densePartition(size_t n, size_t &sinks,
                              size_t &win_start) const
{
    sinks = std::min<size_t>(cfg_.sinkTokens, n);
    win_start = n > cfg_.windowSize ? n - cfg_.windowSize : 0;
    // The window never reaches into the sink prefix.
    win_start = std::max(win_start, sinks);
}

HeadAttentionResult
LongSightAttn::computeHead(const std::vector<float> &q, const KvCache &cache,
                           uint32_t kv_head) const
{
    LS_ASSERT(q.size() == cache.headDim(), "query dim mismatch");
    HeadAttentionResult r;
    computeHeadInto(q.data(), cache, kv_head, r);
    return r;
}

void
LongSightAttn::computeHeadInto(const float *q, const KvCache &cache,
                               uint32_t kv_head,
                               HeadAttentionResult &r) const
{
    const size_t n = cache.size();
    LS_ASSERT(n > 0, "attention over an empty context");

    const size_t dim = cache.headDim();
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));

    r.attended.clear();
    r.sparseRaw = r.sparseSurvivors = r.sparseSelected = 0;
    r.usedSparse = false;

    size_t sinks, win_start;
    densePartition(n, sinks, win_start);

    ScratchFrame frame(ScratchArena::forThisThread());

    // The attended set is built from three disjoint sources, each
    // already ascending: the sink prefix [0, sinks), the selected
    // sparse tokens (a subset of [sinks, win_start)), and the window
    // [win_start, n). Concatenating them in that order — with only the
    // small selected segment sorted by index — replaces the old
    // sort+unique over the whole list.
    for (size_t i = 0; i < sinks; ++i)
        r.attended.push_back(static_cast<uint32_t>(i));

    r.sparseRaw = win_start - sinks;
    if (r.sparseRaw > 0) {
        r.usedSparse = true;
        const int th = thresholds_[kv_head];

        // Filter-space query and its packed signs, in scratch (a
        // SignBits would heap-allocate its word vector).
        float *qf = frame.alloc<float>(dim);
        cache.toFilterSpace(q, qf);
        uint64_t *q_words = frame.alloc<uint64_t>((dim + 63) / 64);
        packSigns(qf, dim, q_words);

        const size_t kcap = std::min<size_t>(cfg_.topK, r.sparseRaw);
        ScoredIndex *selected = frame.alloc<ScoredIndex>(kcap);
        size_t nsel = 0;

        if (cfg_.quantizedScoring && cache.keysQuantized()) {
            // INT8 scoring reads keys through the cache's quantized
            // store, which the fused kernel's dot ops cannot; scan
            // survivors into scratch and heap-select here. Same
            // ordering contract (topk_heap), same results as the old
            // score-vector + topkSelect formulation.
            uint32_t *survivors = frame.alloc<uint32_t>(r.sparseRaw);
            const size_t nsurv =
                batchConcordanceScan(q_words, cache.filterSignsAll(),
                                     sinks, win_start, th, survivors);
            r.sparseSurvivors = nsurv;
            for (size_t j = 0; j < nsurv; ++j) {
                const float s = cache.scoreKey(q, survivors[j]) * scale;
                nsel = topk_heap::push(selected, nsel, cfg_.topK,
                                       ScoredIndex{s, survivors[j]});
            }
            topk_heap::sortBestFirst(selected, nsel);
        } else {
            // Fused SCF → score → select (stages 1-3 in one pass):
            // survivors stream from the concordance scan through
            // dot-scale scoring into the bounded heap without the
            // survivor and score vectors ever existing.
            size_t nsurv = 0;
            nsel = batchScoreSelect(q_words, cache.filterSignsAll(),
                                    sinks, win_start, th, q, cache.keys(),
                                    scale, cfg_.topK, selected, &nsurv);
            r.sparseSurvivors = nsurv;
        }

        r.sparseSelected = nsel;
        const size_t mid = r.attended.size();
        for (size_t j = 0; j < nsel; ++j)
            r.attended.push_back(selected[j].index);
        // Score order -> index order; only this (<= k) segment needs it.
        std::sort(r.attended.begin() + mid, r.attended.end());
    }

    for (size_t i = win_start; i < n; ++i)
        r.attended.push_back(static_cast<uint32_t>(i));

    // Degenerate guard: nothing survived anywhere (possible only with
    // W = 0, no sinks, and a maximal threshold) — attend the most
    // recent token so the softmax stays well-defined.
    if (r.attended.empty())
        r.attended.push_back(static_cast<uint32_t>(n - 1));

    // GPU-side combined softmax and SV accumulation (Fig. 2b (5)-(7)).
    // Probabilities are scratch; the output vector is the caller's.
    float *probs = frame.alloc<float>(r.attended.size());
    r.output.resize(dim);
    subsetAttentionInto(q, cache.keys(), cache.values(),
                        r.attended.data(), r.attended.size(), scale,
                        probs, r.output.data());
}

void
LongSightAttn::recordStats(const HeadAttentionResult &r, FilterStats &fs)
{
    if (r.usedSparse)
        fs.record(r.sparseRaw, r.sparseSurvivors, r.sparseSelected);
}

} // namespace longsight

#include "core/hybrid_attention.hh"

#include <algorithm>
#include <cmath>

#include "core/attention.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "util/logging.hh"

namespace longsight {

LongSightAttn::LongSightAttn(LongSightConfig cfg, uint32_t num_kv_heads)
    : cfg_(cfg), numKvHeads_(num_kv_heads),
      thresholds_(num_kv_heads, cfg.defaultThreshold)
{
    LS_ASSERT(num_kv_heads > 0, "need at least one KV head");
    LS_ASSERT(cfg.topK > 0, "top-k must be positive");
}

void
LongSightAttn::setThreshold(uint32_t kv_head, int threshold)
{
    LS_ASSERT(kv_head < numKvHeads_, "KV head ", kv_head, " out of range");
    thresholds_[kv_head] = threshold;
}

void
LongSightAttn::setAllThresholds(const std::vector<int> &thresholds)
{
    LS_ASSERT(thresholds.size() == numKvHeads_,
              "threshold vector size mismatch");
    thresholds_ = thresholds;
}

int
LongSightAttn::threshold(uint32_t kv_head) const
{
    LS_ASSERT(kv_head < numKvHeads_, "KV head ", kv_head, " out of range");
    return thresholds_[kv_head];
}

void
LongSightAttn::densePartition(size_t n, size_t &sinks,
                              size_t &win_start) const
{
    sinks = std::min<size_t>(cfg_.sinkTokens, n);
    win_start = n > cfg_.windowSize ? n - cfg_.windowSize : 0;
    // The window never reaches into the sink prefix.
    win_start = std::max(win_start, sinks);
}

HeadAttentionResult
LongSightAttn::computeHead(const std::vector<float> &q, const KvCache &cache,
                           uint32_t kv_head) const
{
    const size_t n = cache.size();
    LS_ASSERT(n > 0, "attention over an empty context");
    LS_ASSERT(q.size() == cache.headDim(), "query dim mismatch");

    const float scale =
        1.0f / std::sqrt(static_cast<float>(cache.headDim()));

    HeadAttentionResult r;
    size_t sinks, win_start;
    densePartition(n, sinks, win_start);

    // Dense candidates: sinks plus the sliding window.
    for (size_t i = 0; i < sinks; ++i)
        r.attended.push_back(static_cast<uint32_t>(i));
    for (size_t i = win_start; i < n; ++i)
        r.attended.push_back(static_cast<uint32_t>(i));

    // Sparse region: the middle of the context.
    r.sparseRaw = win_start - sinks;
    if (r.sparseRaw > 0) {
        r.usedSparse = true;
        const std::vector<float> qf = cache.toFilterSpace(q);
        const SignBits q_signs(qf.data(), cache.headDim());
        const int th = thresholds_[kv_head];

        // Stage 1: SCF over the sparse region (PFU in hardware),
        // batch-scanned over the packed sign matrix.
        std::vector<uint32_t> survivors;
        batchConcordanceScan(q_signs, cache.filterSignsAll(), sinks,
                             win_start, th, survivors);
        r.sparseSurvivors = survivors.size();

        // Stage 2: scores on survivors (NMA scoring) — full precision
        // or INT8 keys when quantized scoring is enabled.
        std::vector<float> scores;
        if (cfg_.quantizedScoring && cache.keysQuantized()) {
            scores.resize(survivors.size());
            for (size_t j = 0; j < survivors.size(); ++j)
                scores[j] =
                    cache.scoreKey(q.data(), survivors[j]) * scale;
        } else {
            scores =
                attentionScoresAt(q.data(), cache.keys(), survivors, scale);
        }

        // Stage 3: top-k ranking (NMA ranking + DCC aggregation).
        const auto selected = topkSelect(scores, survivors, cfg_.topK);
        r.sparseSelected = selected.size();
        for (const auto &s : selected)
            r.attended.push_back(s.index);
    }

    std::sort(r.attended.begin(), r.attended.end());
    r.attended.erase(std::unique(r.attended.begin(), r.attended.end()),
                     r.attended.end());

    // Degenerate guard: nothing survived anywhere (possible only with
    // W = 0, no sinks, and a maximal threshold) — attend the most
    // recent token so the softmax stays well-defined.
    if (r.attended.empty())
        r.attended.push_back(static_cast<uint32_t>(n - 1));

    // GPU-side combined softmax and SV accumulation (Fig. 2b (5)-(7)).
    const AttentionResult att = subsetAttention(
        q.data(), cache.keys(), cache.values(), r.attended, scale);
    r.output = att.output;
    return r;
}

void
LongSightAttn::recordStats(const HeadAttentionResult &r, FilterStats &fs)
{
    if (r.usedSparse)
        fs.record(r.sparseRaw, r.sparseSurvivors, r.sparseSelected);
}

} // namespace longsight

#include "core/filter_stats.hh"

#include <algorithm>

namespace longsight {

void
FilterStats::record(uint64_t raw, uint64_t survivors, uint64_t selected)
{
    rawKeys += raw;
    survivorKeys += survivors;
    selectedKeys += selected;
    ++evaluations;
}

void
FilterStats::merge(const FilterStats &other)
{
    rawKeys += other.rawKeys;
    survivorKeys += other.survivorKeys;
    selectedKeys += other.selectedKeys;
    evaluations += other.evaluations;
}

double
FilterStats::filterRatio() const
{
    if (rawKeys == 0)
        return 0.0; // nothing evaluated
    // A fully-filtered stream accessed nothing; clamp the denominator
    // so the ratio stays finite but maximal (the tuner relies on low
    // ratios meaning "this head needs a higher threshold").
    const auto accessed = static_cast<double>(
        std::max<uint64_t>(survivorKeys + selectedKeys, 1));
    return 2.0 * static_cast<double>(rawKeys) / accessed;
}

double
FilterStats::sparsity() const
{
    const double r = filterRatio();
    return r > 0.0 ? 1.0 - 1.0 / r : 0.0;
}

double
FilterStats::survivorFraction() const
{
    if (rawKeys == 0)
        return 0.0;
    return static_cast<double>(survivorKeys) / static_cast<double>(rawKeys);
}

} // namespace longsight

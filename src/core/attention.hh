/**
 * @file
 * Exact attention primitives: full dense attention (the correctness
 * and quality baseline for every experiment), attention restricted to
 * an arbitrary token subset (the hybrid path's combined softmax), and
 * plain score evaluation. All math is done on post-RoPE vectors with
 * double-precision accumulation so the software and modelled-hardware
 * paths can be compared bit-closely.
 */

#ifndef LONGSIGHT_CORE_ATTENTION_HH
#define LONGSIGHT_CORE_ATTENTION_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace longsight {

class KvCache;

/**
 * Result of one attention evaluation for a single query.
 */
struct AttentionResult
{
    std::vector<float> output; //!< headDim-long weighted value sum
    std::vector<float> probs;  //!< softmax weight per attended token
};

/** q . K[i] * scale for rows [begin, end). */
std::vector<float> attentionScores(const float *q, const Matrix &keys,
                                   size_t begin, size_t end, float scale);

/** q . K[idx] * scale for an arbitrary index set. */
std::vector<float> attentionScoresAt(const float *q, const Matrix &keys,
                                     const std::vector<uint32_t> &indices,
                                     float scale);

/**
 * Full dense attention of one query over rows [0, n) of keys/values.
 * probs[i] corresponds to token i.
 */
AttentionResult denseAttention(const float *q, const Matrix &keys,
                               const Matrix &values, float scale);

/**
 * Attention restricted to `indices` (renormalized softmax over the
 * subset). probs[j] corresponds to indices[j].
 */
AttentionResult subsetAttention(const float *q, const Matrix &keys,
                                const Matrix &values,
                                const std::vector<uint32_t> &indices,
                                float scale);

/**
 * Weighted value accumulation: out += sum_j probs[j] * values[indices[j]].
 */
std::vector<float> weightedValueSum(const Matrix &values,
                                    const std::vector<uint32_t> &indices,
                                    const std::vector<float> &probs);

// Raw-span flavours for the zero-allocation decode hot path: identical
// math, but every buffer is caller storage (typically a scratch-arena
// span), so a steady-state call performs no heap allocation.

/**
 * denseAttention into caller storage: probs must hold keys.rows()
 * floats and out values.cols() floats; both are overwritten.
 */
void denseAttentionInto(const float *q, const Matrix &keys,
                        const Matrix &values, float scale, float *probs,
                        float *out);

/**
 * subsetAttention into caller storage: probs must hold `count` floats
 * (probs[j] corresponds to indices[j]) and out values.cols() floats.
 */
void subsetAttentionInto(const float *q, const Matrix &keys,
                         const Matrix &values, const uint32_t *indices,
                         size_t count, float scale, float *probs,
                         float *out);

/** weightedValueSum into caller storage (out overwritten). */
void weightedValueSumInto(const Matrix &values, const uint32_t *indices,
                          size_t count, const float *probs, float *out);

// Cache-aware flavours: identical math against a KvCache in either
// storage mode. Flat caches delegate to the Matrix forms above; paged
// caches walk the block table span by span (dense) or translate
// logical token ids to physical rows in bounded stack chunks (subset),
// so both stay allocation-free and bit-identical to the flat layout.

/**
 * denseAttentionInto over tokens [0, cache.size()): probs must hold
 * cache.size() floats (probs[i] is token i) and out headDim floats.
 */
void denseAttentionInto(const float *q, const KvCache &cache, float scale,
                        float *probs, float *out);

/**
 * subsetAttentionInto over logical token ids `indices` (renormalized
 * softmax over the subset; probs[j] corresponds to indices[j]).
 */
void subsetAttentionInto(const float *q, const KvCache &cache,
                         const uint32_t *indices, size_t count,
                         float scale, float *probs, float *out);

} // namespace longsight

#endif // LONGSIGHT_CORE_ATTENTION_HH

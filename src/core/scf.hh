/**
 * @file
 * Sign-Concordance Filtering (SCF), the paper's §5 filtering stage.
 *
 * SCF(Q, K, TH) = (TH <= D - sum_i (SQ[i] XOR SK[i]))
 *
 * i.e. a key survives if the number of dimensions where its sign bit
 * matches the query's meets a threshold. Thresholds are assigned per
 * KV head (the granularity the paper found stable, §5.1). A threshold
 * of zero keeps every key; a threshold of D keeps only keys whose sign
 * pattern is identical to the query's.
 */

#ifndef LONGSIGHT_CORE_SCF_HH
#define LONGSIGHT_CORE_SCF_HH

#include <cstdint>
#include <vector>

#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "tensor/tensor.hh"

namespace longsight {

/**
 * Evaluate SCF for a single query/key pair.
 */
bool scfPasses(const SignBits &query, const SignBits &key, int threshold);

/**
 * Filter a contiguous range of keys: returns the indices (relative to
 * `begin`... offset by `base_index`) of keys that pass.
 *
 * @param query       sign bits of the query
 * @param keys        sign bits per key
 * @param threshold   per-KV-head SCF threshold
 * @param base_index  added to each surviving position (global indexing)
 */
std::vector<uint32_t> scfFilter(const SignBits &query,
                                const std::vector<SignBits> &keys,
                                int threshold, uint32_t base_index = 0);

/**
 * Batch flavour over a packed SignMatrix: filters every row with the
 * runtime-dispatched scan kernel. Survivor indices are row indices
 * offset by `base_index`; bit-identical to the vector<SignBits> path.
 */
std::vector<uint32_t> scfFilter(const SignBits &query,
                                const SignMatrix &keys, int threshold,
                                uint32_t base_index = 0);

/**
 * Filter directly from float rows (packs signs on the fly). Slower
 * path used by tests to cross-check the packed implementation.
 */
std::vector<uint32_t> scfFilterRows(const float *query, const Matrix &keys,
                                    size_t begin, size_t end, int threshold);

} // namespace longsight

#endif // LONGSIGHT_CORE_SCF_HH

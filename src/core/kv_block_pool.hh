/**
 * @file
 * KvBlockPool — the shared paged arena behind every paged KvCache.
 * §4's "vector database" framing makes the KV cache an indexed store
 * of Key/Value Objects; this pool is its physical layer: a fixed
 * budget of block-granular slots (keys, values, packed sign rows,
 * INT8 key rows all block-granular in one preallocated arena each),
 * a free-list allocator, per-block reference counts for
 * copy-on-write prefix sharing, and a two-tier residency model.
 *
 * Residency is an *accounting* layer, not a placement constraint:
 * DReX's expander tier is compute-enabled (the PFU scans wherever the
 * signs live), so a block is scannable in either tier and promotion /
 * eviction never changes an attention output — it only moves which
 * blocks the model charges HBM-latency vs. expander-latency for.
 * Promotion is driven by the SCF survivor counters each scan records:
 * blocks whose keys keep surviving the concordance filter are the
 * ones the NMA keeps fetching, so they earn the HBM window.
 *
 * Thread safety: block allocation / release / refcounts, residency
 * state, and the prefix registry are guarded by lock_ (an annotated
 * SpinLock; the LS_GUARDED_BY declarations below are enforced by the
 * clang -Wthread-safety CI rows); scan counters are relaxed atomics.
 * Placement (which physical block a lane draws) may vary run to run
 * under concurrency, but every consumer indexes through block tables,
 * so logical outputs never depend on placement.
 */

#ifndef LONGSIGHT_CORE_KV_BLOCK_POOL_HH
#define LONGSIGHT_CORE_KV_BLOCK_POOL_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "tensor/sign_matrix.hh"
#include "tensor/tensor.hh"
#include "util/annotations.hh"
#include "util/sync.hh"

namespace longsight {

/** Where a block's bytes are charged: the bounded HBM window or the
 *  CXL/DReX expander tier (default for newly allocated blocks). */
enum class Tier : uint8_t
{
    Expander = 0,
    Hbm = 1,
};

/** Sentinel for "no block" (allocation failure / empty table slot). */
inline constexpr uint32_t kInvalidBlock = UINT32_MAX;

/**
 * Fixed-budget arena of KV blocks shared by many KvCaches.
 *
 * Every backing store (keys, values, raw signs, rotated signs,
 * quantized keys) is sized once at construction — physical row
 * `b * blockTokens() + o` of each store belongs to block b. Nothing
 * reallocates after construction, so row pointers are stable and the
 * decode hot path stays allocation-free.
 */
class KvBlockPool
{
  public:
    /**
     * Arena for `num_blocks` blocks of `block_tokens` tokens each.
     * `hbm_budget_blocks` bounds the HBM-resident tier (0 = everything
     * lives in the expander tier until setHbmBudget()).
     */
    KvBlockPool(uint32_t head_dim, uint32_t block_tokens,
                uint32_t num_blocks, uint32_t hbm_budget_blocks = 0);

    KvBlockPool(const KvBlockPool &) = delete;
    KvBlockPool &operator=(const KvBlockPool &) = delete;

    uint32_t headDim() const { return headDim_; }
    uint32_t blockTokens() const { return blockTokens_; }
    uint32_t numBlocks() const { return numBlocks_; }

    /** Blocks currently allocated (refcount > 0). */
    uint32_t usedBlocks() const;
    uint32_t freeBlocks() const;
    /** usedBlocks() / numBlocks(). */
    double occupancy() const;

    // ---- Backing stores (physical row = block * blockTokens + off) --
    const Matrix &keys() const { return keys_; }
    const Matrix &values() const { return values_; }
    const SignMatrix &rawSigns() const { return rawSigns_; }
    const SignMatrix &rotatedSigns() const { return rotatedSigns_; }

    /** Write one token's key/value/raw-sign rows (no locking: the
     *  owning cache has exclusive write access to its blocks). */
    void writeToken(size_t phys_row, const float *key, const float *value);

    /** Overwrite the rotated-sign row (ITQ path). */
    void writeRotatedSigns(size_t phys_row, const float *rotated_key);

    /** Quantize a key into the INT8 arena row (requires
     *  ensureQuantized() to have run). */
    void writeQuantized(size_t phys_row, const float *key);

    /** Lazily allocate the INT8 arena (cold; idempotent). */
    void ensureQuantized();
    bool quantizedReady() const { return !quantScales_.empty(); }

    const int8_t *quantizedRow(size_t phys_row) const;
    float quantizedScale(size_t phys_row) const;

    /** Arena base pointers for the batch INT8 kernels (row-major,
     *  headDim() int8s + one scale per physical row); valid once
     *  quantizedReady(). */
    const int8_t *quantizedData() const { return quantData_.data(); }
    const float *quantizedScales() const { return quantScales_.data(); }

    // ---- Block lifecycle -------------------------------------------
    /** Pop a free block (refcount 1, Expander tier, counters zeroed);
     *  kInvalidBlock when the pool is exhausted. */
    uint32_t allocBlock();

    /** Add a reference (CoW share). */
    void retainBlock(uint32_t block);

    /** Drop a reference; the block returns to the free list at zero. */
    void releaseBlock(uint32_t block);

    uint32_t refCount(uint32_t block) const;

    /** Copy every backing row of src into dst (CoW unshare). */
    void copyBlock(uint32_t src, uint32_t dst);

    // ---- Residency --------------------------------------------------
    /** Record one filter pass over a block: rows_scanned candidate
     *  rows offered, `survivors` of them past the SCF threshold. */
    void recordScan(uint32_t block, uint64_t rows_scanned,
                    uint64_t survivors);

    Tier tier(uint32_t block) const;
    uint32_t hbmBudget() const
    {
        SpinGuard g(lock_);
        return hbmBudget_;
    }
    void setHbmBudget(uint32_t blocks)
    {
        SpinGuard g(lock_);
        hbmBudget_ = blocks;
    }
    uint32_t hbmResident() const;

    /**
     * Re-rank residency: the hbmBudget() used blocks with the most
     * SCF survivors since the last rebalance win the HBM window;
     * everything else demotes to the expander. Counters are halved
     * afterwards so stale popularity ages out. Returns the number of
     * tier changes made.
     */
    uint32_t rebalance();

    uint64_t promotions() const
    {
        SpinGuard g(lock_);
        return promotions_;
    }
    uint64_t evictions() const
    {
        SpinGuard g(lock_);
        return evictions_;
    }
    uint64_t survivorRows(uint32_t block) const;
    uint64_t scannedRows(uint32_t block) const;

    // ---- Prefix sharing ---------------------------------------------
    /**
     * Publish `count` fully-populated blocks as the pages of a prompt
     * prefix keyed by `hash`. The registry retains each block (its own
     * pin), so published prefixes survive the publisher retiring.
     * Returns false (and retains nothing) if `hash` is already
     * published.
     */
    bool publishPrefix(uint64_t hash, const uint32_t *blocks,
                       size_t count);

    /**
     * Adopt a published prefix: retains each of its blocks and appends
     * the ids to blocks_out. Returns the token count covered
     * (count * blockTokens), or 0 on miss.
     */
    size_t adoptPrefix(uint64_t hash, std::vector<uint32_t> &blocks_out);

    /** Drop a published prefix's registry pins. */
    void unpublishPrefix(uint64_t hash);

    uint64_t prefixHits() const
    {
        SpinGuard g(lock_);
        return prefixHits_;
    }
    uint64_t prefixMisses() const
    {
        SpinGuard g(lock_);
        return prefixMisses_;
    }
    /** Tokens served from shared pages instead of recomputed. */
    uint64_t prefixSharedTokens() const
    {
        SpinGuard g(lock_);
        return prefixSharedTokens_;
    }

  private:
    uint32_t headDim_;
    uint32_t blockTokens_;
    uint32_t numBlocks_;
    // guarded_by is late-parsed, so the forward reference to lock_ is
    // fine; the declaration stays here to match the ctor init order.
    uint32_t hbmBudget_ LS_GUARDED_BY(lock_);

    Matrix keys_;
    Matrix values_;
    SignMatrix rawSigns_;
    SignMatrix rotatedSigns_;
    std::vector<int8_t> quantData_;
    std::vector<float> quantScales_;

    mutable SpinLock lock_;
    //!< LIFO free list
    std::vector<uint32_t> free_ LS_GUARDED_BY(lock_);
    //!< per-block refcount
    std::vector<uint32_t> refs_ LS_GUARDED_BY(lock_);
    //!< per-block Tier
    std::vector<uint8_t> tier_ LS_GUARDED_BY(lock_);

    std::unique_ptr<std::atomic<uint64_t>[]> scanned_;
    std::unique_ptr<std::atomic<uint64_t>[]> survivors_;
    uint64_t promotions_ LS_GUARDED_BY(lock_) = 0;
    uint64_t evictions_ LS_GUARDED_BY(lock_) = 0;

    std::map<uint64_t, std::vector<uint32_t>> prefixes_ LS_GUARDED_BY(lock_);
    uint64_t prefixHits_ LS_GUARDED_BY(lock_) = 0;
    uint64_t prefixMisses_ LS_GUARDED_BY(lock_) = 0;
    uint64_t prefixSharedTokens_ LS_GUARDED_BY(lock_) = 0;
};

} // namespace longsight

#endif // LONGSIGHT_CORE_KV_BLOCK_POOL_HH

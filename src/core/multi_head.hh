/**
 * @file
 * Full multi-head hybrid attention for one decoder layer under GQA:
 * numQueryHeads query vectors attend through numKvHeads KV caches
 * (each GQA group of groupSize() queries shares one cache and one SCF
 * threshold). This is the layer-level API a serving integration uses;
 * LongSightAttn::computeGroupInto is the per-KV-head primitive
 * underneath — one thread-pool work item per KV head scans that head's
 * cache once for its whole query group (not once per query head).
 */

#ifndef LONGSIGHT_CORE_MULTI_HEAD_HH
#define LONGSIGHT_CORE_MULTI_HEAD_HH

#include <cstdint>
#include <vector>

#include "core/filter_stats.hh"
#include "core/hybrid_attention.hh"
#include "core/kv_cache.hh"
#include "tensor/tensor.hh"

namespace longsight {

/**
 * Result of one layer's multi-head hybrid attention.
 */
struct LayerAttentionResult
{
    Matrix outputs; //!< numQueryHeads x headDim
    FilterStats stats;
    std::vector<HeadAttentionResult> perQuery; //!< one per query head
};

/**
 * GQA-grouped hybrid attention across all heads of a layer.
 */
class MultiHeadLongSight
{
  public:
    /**
     * @param cfg hybrid parameters (thresholds are per KV head)
     * @param num_query_heads query-head count (multiple of KV heads)
     * @param num_kv_heads KV-head count
     * @param head_dim per-head dimension
     */
    MultiHeadLongSight(const LongSightConfig &cfg, uint32_t num_query_heads,
                       uint32_t num_kv_heads, uint32_t head_dim);

    uint32_t numQueryHeads() const { return numQueryHeads_; }
    uint32_t numKvHeads() const { return attn_.numKvHeads(); }
    uint32_t groupSize() const { return numQueryHeads_ / numKvHeads(); }
    uint32_t headDim() const { return headDim_; }

    LongSightAttn &attention() { return attn_; }
    const LongSightAttn &attention() const { return attn_; }

    /**
     * Compute one decode step's attention for every query head.
     *
     * @param queries numQueryHeads x headDim post-RoPE query matrix;
     *        query head q uses KV head q / groupSize()
     * @param caches one KvCache per KV head (same layer, same user)
     */
    LayerAttentionResult compute(const Matrix &queries,
                                 const std::vector<KvCache> &caches) const;

    /**
     * compute into an existing result — the decode hot-path form.
     * r.perQuery is resized (not reallocated) to one slot per query
     * head and each slot's buffers are refilled in place, so a decode
     * loop that reuses one LayerAttentionResult per layer performs no
     * steady-state heap allocation here. r.stats is reset first.
     */
    void computeInto(const Matrix &queries,
                     const std::vector<KvCache> &caches,
                     LayerAttentionResult &r) const;

  private:
    LongSightAttn attn_;
    uint32_t numQueryHeads_;
    uint32_t headDim_;
};

} // namespace longsight

#endif // LONGSIGHT_CORE_MULTI_HEAD_HH

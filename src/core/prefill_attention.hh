/**
 * @file
 * Block-sparse prefill attention — the prompt-pass twin of the decode
 * side's Sign-Concordance Filtering (SALE-style low-bit block
 * estimation; ROADMAP item 3). The prompt's queries are tiled into
 * Q-blocks and the KV stream into K-blocks; each block is summarized
 * by a packed-sign majority signature (blockSignReduce), and Q-block x
 * K-block signature concordance decides which past K-blocks a Q-block
 * attends to. Causal-frontier, sink, and local-window blocks are
 * always dense; the remaining candidates pass through a per-head
 * accuracy knob (concordance threshold or top-fraction). Inside the
 * surviving blocks the math is the exact subsetAttentionInto
 * composition, so knob = Dense degenerates BIT-IDENTICALLY to the
 * dense causal prompt pass (densePrefillReference): per query the
 * attended set becomes the full causal prefix, batchDotScaleAt over an
 * ascending identity index list is contractually the same math as
 * batchDotScaleRange, and softmax + weighted value accumulation are
 * shared code.
 *
 * Chunked prefill: advance() processes only COMPLETE Q-blocks eagerly
 * and defers the partial tail until a flush, so any chunking of the
 * same token stream produces bit-identical outputs to one monolithic
 * pass (the estimation inputs — whole-block signatures — never depend
 * on where chunk boundaries fell).
 *
 * Estimation runs in raw sign space (no ITQ rotation): the prompt
 * pass summarizes blocks of *pre-rotation* keys, matching SALE's
 * untrained low-bit estimates and keeping the path dependency-free of
 * the decode-side ITQ training schedule.
 */

#ifndef LONGSIGHT_CORE_PREFILL_ATTENTION_HH
#define LONGSIGHT_CORE_PREFILL_ATTENTION_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/sign_matrix.hh"
#include "tensor/tensor.hh"

namespace longsight {

/** How the per-head accuracy knob selects estimated K-blocks. */
enum class PrefillSparsityMode
{
    /** Keep every block — bit-identical to the dense prompt pass. */
    Dense,
    /** Keep blocks whose signature concordance >= threshold. */
    Threshold,
    /** Keep the best ceil(keepFraction * candidates) blocks per
     *  Q-block (ties broken toward lower block index). */
    TopFraction,
};

/**
 * Per-head block-sparsity knob for the prompt pass. The forced-dense
 * regions (sinks, local window, causal frontier) are part of the
 * accuracy contract: estimation can only ever drop blocks strictly
 * older than the window that are not sink blocks.
 */
struct PrefillSparsityConfig
{
    /** Tokens per Q/K block (the estimation granularity). */
    size_t blockTokens = 128;
    PrefillSparsityMode mode = PrefillSparsityMode::Threshold;
    /** Threshold mode: keep K-blocks with signature concordance
     *  (dim - popcount(xor)) at or above this. */
    int threshold = 0;
    /** TopFraction mode: fraction of candidate blocks kept. */
    double keepFraction = 0.25;
    /** Always-dense prefix tokens (rounded up to whole blocks). */
    size_t sinkTokens = 16;
    /** Always-dense trailing window per query: every query attends
     *  densely to at least this many immediately preceding tokens. */
    size_t windowTokens = 512;
    /** Record per-Q-block decisions (tests/bench introspection). */
    bool recordDecisions = false;
    /**
     * Run estimation and block selection but skip the attention math:
     * stats/decisions are exactly those of a real pass, the output
     * matrix is never touched (advance() then accepts an empty one).
     * This is the bench's knob-sweep mode — the full 8B/32K shape is
     * swept at signature-scan cost instead of attention cost.
     */
    bool estimateOnly = false;
};

/** Aggregate accounting for one head's sparse prompt pass. */
struct PrefillStats
{
    uint64_t qBlocks = 0;         //!< Q-blocks processed
    uint64_t candidateBlocks = 0; //!< estimatable (non-forced) K-blocks
    uint64_t keptBlocks = 0;      //!< candidates the knob kept
    uint64_t forcedBlocks = 0;    //!< sink + window + frontier blocks
    uint64_t attendedTokens = 0;  //!< sum over queries of attended set
    uint64_t denseTokens = 0;     //!< sum over queries of causal prefix

    /** Fraction of estimatable K-blocks skipped (0 when none). */
    double blockSkipFraction() const
    {
        return candidateBlocks == 0
            ? 0.0
            : 1.0 -
                static_cast<double>(keptBlocks) /
                static_cast<double>(candidateBlocks);
    }

    /** Attended / dense token-pair fraction (1 when dense). */
    double attendedFraction() const
    {
        return denseTokens == 0
            ? 1.0
            : static_cast<double>(attendedTokens) /
                static_cast<double>(denseTokens);
    }

    void merge(const PrefillStats &o);
};

/** One Q-block's estimation outcome (recordDecisions mode). */
struct PrefillBlockDecision
{
    uint32_t qBlock = 0;       //!< Q-block index
    uint32_t qBegin = 0;       //!< first query token processed
    uint32_t qEnd = 0;         //!< one past the last query token
    uint32_t sinkBlocks = 0;   //!< forced blocks [0, sinkBlocks)
    uint32_t windowStart = 0;  //!< forced blocks [windowStart, qBlock]
    uint32_t candidates = 0;   //!< estimatable blocks offered the knob
    std::vector<uint32_t> keptBlocks; //!< knob survivors, ascending
};

/**
 * Stateful block-sparse prompt pass for ONE attention head. Feed it a
 * growing query/key/value stream via advance(); it emits per-query
 * attention outputs into the caller's matrix as Q-blocks complete.
 */
class BlockSparsePrefill
{
  public:
    BlockSparsePrefill(size_t headDim, const PrefillSparsityConfig &cfg);

    /**
     * Extend processing to the first upTo tokens: rows [0, upTo) of
     * queries/keys/values are valid and out has >= upTo rows of
     * headDim columns. Complete Q-blocks in [processedTokens(), upTo)
     * are attended now; a partial trailing block is deferred until a
     * call with flush = true (out rows for deferred queries are left
     * untouched). upTo must not shrink between calls. Queries in this
     * synthetic pipeline are the token's own post-RoPE key vector
     * (self-query); any per-row query matrix works.
     *
     * Deterministic and bit-identical for any chunking of the same
     * stream, any thread count, and any kernel backend — provided
     * flush is only raised once, at the true end of the prompt (an
     * early flush processes a then-partial block whose signature a
     * longer stream would have completed differently).
     */
    void advance(const Matrix &queries, const Matrix &keys,
                 const Matrix &values, float scale, size_t upTo,
                 bool flush, Matrix &out);

    /** Queries attended so far (== out rows filled). */
    size_t processedTokens() const { return processed_; }

    /** Complete K-blocks summarized into signatures so far. */
    size_t signatureBlocks() const { return sigBlocks_; }

    const PrefillStats &stats() const { return stats_; }
    const PrefillSparsityConfig &config() const { return cfg_; }

    /** Per-Q-block logs (empty unless cfg.recordDecisions). */
    const std::vector<PrefillBlockDecision> &decisions() const
    {
        return decisions_;
    }

  private:
    struct QBlockTask
    {
        uint32_t block = 0;       //!< Q-block index
        uint32_t qBegin = 0;      //!< first query token
        uint32_t qEnd = 0;        //!< one past last query token
        uint32_t windowStart = 0; //!< first forced window block
        uint32_t keptOffset = 0;  //!< into keptBuf_
        uint32_t keptCount = 0;
        uint32_t candidates = 0;  //!< estimatable block count
    };

    size_t windowStartBlock(size_t q_begin) const;
    void extendSignatures(const Matrix &keys, size_t full_blocks);
    void estimateTasks(const Matrix &queries);
    void runTask(const QBlockTask &t, const Matrix &queries,
                 const Matrix &keys, const Matrix &values, float scale,
                 Matrix &out, PrefillStats &stats) const;

    size_t headDim_;
    PrefillSparsityConfig cfg_;
    SignMatrix blockSigs_;   //!< one majority row per complete K-block
    size_t sigBlocks_ = 0;
    size_t processed_ = 0;
    PrefillStats stats_;
    std::vector<PrefillBlockDecision> decisions_;
    // Per-advance staging, members so capacity persists across calls.
    std::vector<QBlockTask> tasks_;
    std::vector<uint32_t> keptBuf_;
    std::vector<PrefillStats> taskStats_;
};

/**
 * Dense causal prompt pass (the correctness baseline): for every
 * query i in [0, upTo), softmax(q_i . K[0..i] * scale) . V[0..i] into
 * out.row(i). Same kernels, same double-precision ascending
 * accumulation as the decode-side dense path; parallel over queries
 * with bit-identical results at any thread count.
 */
void densePrefillReference(const Matrix &queries, const Matrix &keys,
                           const Matrix &values, float scale, size_t upTo,
                           Matrix &out);

} // namespace longsight

#endif // LONGSIGHT_CORE_PREFILL_ATTENTION_HH

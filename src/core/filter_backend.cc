#include "core/filter_backend.hh"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hh"
#include "tensor/quantized.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

namespace {

/**
 * Attribute each selected logical token to the span containing it
 * (spans ascend by logicalBase, so a binary search suffices), so
 * estimation-style backends — which have no per-span survivor stream —
 * can still credit the pool's residency counters with where their
 * winners live.
 */
void
countSelectedPerSpan(const ScanSpan *spans, size_t num_spans,
                     const FilterSelection &out, uint32_t num_queries,
                     size_t kcap, size_t *span_selected)
{
    for (size_t s = 0; s < num_spans; ++s)
        span_selected[s] = 0;
    for (uint32_t g = 0; g < num_queries; ++g) {
        const ScoredIndex *sel = out.selected + g * kcap;
        for (size_t j = 0; j < out.numSelected[g]; ++j) {
            const uint32_t idx = sel[j].index;
            size_t lo = 0, hi = num_spans;
            while (hi - lo > 1) {
                const size_t mid = lo + (hi - lo) / 2;
                if (spans[mid].logicalBase <= idx)
                    lo = mid;
                else
                    hi = mid;
            }
            span_selected[lo] += 1;
        }
    }
}

/**
 * The paper's pipeline: pack query signs in (ITQ-rotated) filter
 * space, concordance-scan the sign plane, score survivors
 * full-precision (or against the INT8 key arena under
 * quantizedScoring), top-k select. This is a verbatim extraction of
 * the pre-refactor hybrid-attention filter stage — with one upgrade:
 * the quantizedScoring branch now runs the fused
 * batchQuantScoreSelectMultiSpans driver instead of a per-survivor
 * scoreKey loop. Same rounding expression (float(acc * key_scale) *
 * scale), same ascending candidate order, same heap — so selections
 * stay element-identical, just without materializing survivor lists.
 */
class ScfFilterBackend final : public FilterBackend
{
  public:
    const char *name() const override { return "scf"; }

    void select(const FilterArgs &a, ScratchFrame &frame,
                const FilterSelection &out) const override
    {
        LS_HOT_PATH();
        LS_DETERMINISTIC();
        LS_NO_LOCK();
        const KvCache &cache = *a.cache;
        const size_t dim = cache.headDim();
        const size_t wpr = (dim + 63) / 64;
        const uint32_t nq = a.numQueries;

        // Filter-space projections and packed signs for the whole
        // group, in scratch (a SignBits would heap-allocate).
        float *qf = frame.alloc<float>(dim);
        uint64_t *q_words = frame.alloc<uint64_t>(nq * wpr);
        for (uint32_t g = 0; g < nq; ++g) {
            cache.toFilterSpace(a.queries + g * a.queryStride, qf);
            packSigns(qf, dim, q_words + g * wpr);
        }

        // The filter region as physical spans (a paged cache's block
        // table; the single identity span when flat) — both branches
        // route through the span drivers, so flat and paged layouts
        // run the same code and stay element-identical.
        ScanSpan *spans = frame.alloc<ScanSpan>(cache.maxSpans(a.lo, a.hi));
        const size_t nspans = cache.collectSpans(a.lo, a.hi, spans);
        size_t *span_surv = frame.alloc<size_t>(nspans);
        const SignMatrix &fsigns = cache.filterSignsStorage();

        if (a.quantizedScoring && cache.keysQuantized()) {
            batchQuantScoreSelectMultiSpans(
                q_words, nq, fsigns, spans, nspans, a.threshold, a.queries,
                a.queryStride, cache.quantizedStorage(),
                cache.quantizedScalesStorage(), dim, a.scale, a.k,
                out.selected, a.kcap, out.numSelected, out.survivors,
                span_surv);
        } else {
            // Fused SCF → score → select for the whole group: the sign
            // rows and survivor key tiles are read once and stream
            // through every query's concordance test and top-k heap.
            batchScoreSelectMultiSpans(q_words, nq, fsigns, spans, nspans,
                                       a.threshold, a.queries,
                                       a.queryStride, cache.keysStorage(),
                                       a.scale, a.k, out.selected, a.kcap,
                                       out.numSelected, out.survivors,
                                       span_surv);
        }

        // Credit the pass to the pool's SCF residency counters: blocks
        // whose keys keep surviving the filter earn the HBM window.
        if (cache.paged())
            for (size_t si = 0; si < nspans; ++si)
                cache.recordFilterScan(spans[si],
                                       uint64_t{nq} * spans[si].count,
                                       span_surv[si]);
    }
};

/**
 * QSInference-style low-bit estimation: the query is symmetric-INT8
 * quantized (quantizeInt8Into, same scheme as the key arena) and EVERY
 * middle token gets the exact integer dot q8 . k8, turned into a float
 * estimate under the batchInt8ScoreSelectMultiSpans contract. There is
 * no survivor scan — estimation replaces it — so survivors[g] is the
 * selection count, and residency credit attributes the selected
 * winners to their spans.
 */
class Int8FilterBackend final : public FilterBackend
{
  public:
    const char *name() const override { return "int8"; }

    void select(const FilterArgs &a, ScratchFrame &frame,
                const FilterSelection &out) const override
    {
        LS_HOT_PATH();
        LS_DETERMINISTIC();
        LS_NO_LOCK();
        const KvCache &cache = *a.cache;
        LS_ASSERT(cache.keysQuantized(),
                  "INT8 filter requires KvCache::enableKeyQuantization()");
        const size_t dim = cache.headDim();
        const uint32_t nq = a.numQueries;

        // Quantize the RAW queries (not filter space: estimation
        // approximates the true dot product, which ignores the ITQ
        // rotation by orthogonality).
        int8_t *q8s = frame.alloc<int8_t>(nq * dim);
        float *q_scales = frame.alloc<float>(nq);
        for (uint32_t g = 0; g < nq; ++g)
            quantizeInt8Into(a.queries + g * a.queryStride, dim,
                             q8s + g * dim, &q_scales[g]);

        ScanSpan *spans = frame.alloc<ScanSpan>(cache.maxSpans(a.lo, a.hi));
        const size_t nspans = cache.collectSpans(a.lo, a.hi, spans);

        batchInt8ScoreSelectMultiSpans(
            q8s, q_scales, nq, cache.quantizedStorage(),
            cache.quantizedScalesStorage(), dim, spans, nspans, a.scale,
            a.k, out.selected, a.kcap, out.numSelected, nullptr);

        for (uint32_t g = 0; g < nq; ++g)
            out.survivors[g] = out.numSelected[g];

        if (cache.paged()) {
            size_t *span_sel = frame.alloc<size_t>(nspans);
            countSelectedPerSpan(spans, nspans, out, nq, a.kcap, span_sel);
            for (size_t si = 0; si < nspans; ++si)
                cache.recordFilterScan(spans[si],
                                       uint64_t{nq} * spans[si].count,
                                       span_sel[si]);
        }
    }
};

/**
 * CSAttention-style cluster-first scoring: tile the middle region into
 * logical blocks of centroidBlockTokens, summarize each by its mean
 * key (double accumulation in ascending token order — deterministic),
 * score the centroids per query, descend into the best keepFraction of
 * blocks, and exact-score only the keys inside the winners. Survivors
 * are the descended candidates. Centroids are rebuilt per call — this
 * is the O(n·d) functional reference of the family, not a cached
 * index; the harness charges its cost model accordingly.
 */
class CentroidFilterBackend final : public FilterBackend
{
  public:
    const char *name() const override { return "centroid"; }

    void select(const FilterArgs &a, ScratchFrame &frame,
                const FilterSelection &out) const override
    {
        LS_HOT_PATH();
        LS_DETERMINISTIC();
        LS_NO_LOCK();
        const KvCache &cache = *a.cache;
        const size_t dim = cache.headDim();
        const uint32_t nq = a.numQueries;
        const size_t bt = a.centroidBlockTokens ? a.centroidBlockTokens
                                                : 128;
        const size_t region = a.hi - a.lo;
        const size_t nblocks = (region + bt - 1) / bt;

        float *centroids = frame.alloc<float>(nblocks * dim);
        double *acc = frame.alloc<double>(dim);
        for (size_t b = 0; b < nblocks; ++b) {
            const size_t t0 = a.lo + b * bt;
            const size_t t1 = std::min(a.hi, t0 + bt);
            for (size_t d = 0; d < dim; ++d)
                acc[d] = 0.0;
            for (size_t t = t0; t < t1; ++t) {
                const float *key = cache.keyRow(t);
                for (size_t d = 0; d < dim; ++d)
                    acc[d] += static_cast<double>(key[d]);
            }
            const double inv = 1.0 / static_cast<double>(t1 - t0);
            float *c = centroids + b * dim;
            for (size_t d = 0; d < dim; ++d)
                c[d] = static_cast<float>(acc[d] * inv);
        }

        const size_t keep = std::min(
            nblocks,
            std::max<size_t>(
                1, static_cast<size_t>(std::ceil(
                       a.centroidKeepFraction *
                       static_cast<double>(nblocks)))));

        ScoredIndex *bheap = frame.alloc<ScoredIndex>(keep);
        uint32_t *bwin = frame.alloc<uint32_t>(keep);
        // Winning blocks are full size except possibly the region's
        // last block, so keep * bt bounds the candidate count.
        uint32_t *cand_log = frame.alloc<uint32_t>(keep * bt);
        uint32_t *cand_phys = frame.alloc<uint32_t>(keep * bt);

        for (uint32_t g = 0; g < nq; ++g) {
            const float *q = a.queries + g * a.queryStride;

            // Stage 1: rank blocks by centroid score (same rounding
            // family as the dot kernels: ascending double sum, one
            // float cast, one scale multiply).
            size_t hs = 0;
            for (size_t b = 0; b < nblocks; ++b) {
                const float *c = centroids + b * dim;
                double s = 0.0;
                for (size_t d = 0; d < dim; ++d)
                    s += static_cast<double>(q[d]) *
                         static_cast<double>(c[d]);
                hs = topk_heap::push(
                    bheap, hs, keep,
                    ScoredIndex{static_cast<float>(s) * a.scale,
                                static_cast<uint32_t>(b)});
            }
            topk_heap::sortBestFirst(bheap, hs);
            for (size_t j = 0; j < hs; ++j)
                bwin[j] = bheap[j].index;
            // Ascending block order keeps the candidate stream — and
            // therefore heap tie-breaks — in logical token order.
            std::sort(bwin, bwin + hs);

            // Stage 2: exact-score the winners' keys.
            size_t nc = 0;
            for (size_t j = 0; j < hs; ++j) {
                const size_t t0 = a.lo + size_t{bwin[j]} * bt;
                const size_t t1 = std::min(a.hi, t0 + bt);
                for (size_t t = t0; t < t1; ++t)
                    cand_log[nc++] = static_cast<uint32_t>(t);
            }
            cache.mapToPhysical(cand_log, nc, cand_phys);

            ScratchFrame qframe(frame.arena());
            float *scores = qframe.alloc<float>(nc);
            batchDotScaleAt(q, cache.keysStorage(), cand_phys, nc,
                            a.scale, scores);

            ScoredIndex *heap = out.selected + g * a.kcap;
            size_t sel = 0;
            for (size_t j = 0; j < nc; ++j)
                sel = topk_heap::push(heap, sel, a.k,
                                      ScoredIndex{scores[j], cand_log[j]});
            topk_heap::sortBestFirst(heap, sel);
            out.numSelected[g] = sel;
            out.survivors[g] = nc;
        }

        if (cache.paged()) {
            ScanSpan *spans =
                frame.alloc<ScanSpan>(cache.maxSpans(a.lo, a.hi));
            const size_t nspans = cache.collectSpans(a.lo, a.hi, spans);
            size_t *span_sel = frame.alloc<size_t>(nspans);
            countSelectedPerSpan(spans, nspans, out, nq, a.kcap, span_sel);
            // The centroid pass reads every key row, so the scan charge
            // covers the whole region like SCF's.
            for (size_t si = 0; si < nspans; ++si)
                cache.recordFilterScan(spans[si],
                                       uint64_t{nq} * spans[si].count,
                                       span_sel[si]);
        }
    }
};

// Namespace-scope statics (not function-local: a guarded local static
// would put a guard-variable acquire on the LS_NO_LOCK select path).
const ScfFilterBackend kScfBackend;
const Int8FilterBackend kInt8Backend;
const CentroidFilterBackend kCentroidBackend;

} // namespace

const char *
filterKindName(FilterKind k)
{
    switch (k) {
    case FilterKind::Scf:
        return "scf";
    case FilterKind::Int8:
        return "int8";
    case FilterKind::Centroid:
        return "centroid";
    }
    return "?";
}

const FilterBackend &
filterBackendFor(FilterKind kind)
{
    switch (kind) {
    case FilterKind::Int8:
        return kInt8Backend;
    case FilterKind::Centroid:
        return kCentroidBackend;
    case FilterKind::Scf:
        break;
    }
    return kScfBackend;
}

} // namespace longsight

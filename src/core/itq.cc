#include "core/itq.hh"

#include "tensor/linalg.hh"
#include "tensor/svd.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace longsight {

namespace {

/** B = sign(X R), entries in {-1, +1} (zero maps to +1). */
Matrix
signMatrix(const Matrix &rotated)
{
    Matrix b(rotated.rows(), rotated.cols());
    for (size_t i = 0; i < rotated.size(); ++i)
        b.data()[i] = rotated.data()[i] >= 0.0f ? 1.0f : -1.0f;
    return b;
}

} // namespace

double
signQuantizationLoss(const Matrix &data, const Matrix &rotation)
{
    LS_ASSERT(data.cols() == rotation.rows(),
              "ITQ loss shape mismatch");
    const Matrix rotated = matmul(data, rotation);
    double loss = 0.0;
    for (size_t i = 0; i < rotated.size(); ++i) {
        const double v = rotated.data()[i];
        const double b = v >= 0.0 ? 1.0 : -1.0;
        loss += (b - v) * (b - v);
    }
    return loss / static_cast<double>(data.rows());
}

Matrix
trainItqRotation(const Matrix &data, int iterations, Rng &rng)
{
    const size_t d = data.cols();
    LS_ASSERT(data.rows() >= d,
              "ITQ needs at least dim training vectors (", data.rows(),
              " < ", d, ")");
    Matrix r = randomOrthogonal(d, rng);

    for (int it = 0; it < iterations; ++it) {
        const Matrix rotated = matmul(data, r);
        const Matrix b = signMatrix(rotated);
        // Maximize tr(R^T X^T B): R = U W^T for svd(X^T B) = U S W^T.
        const Matrix m = matmul(transpose(data), b);
        const SvdResult f = svd(m);
        r = matmul(f.u, transpose(f.v));
    }
    return r;
}

} // namespace longsight

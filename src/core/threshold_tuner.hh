/**
 * @file
 * The §8.1.3 threshold-tuning loop: start with every per-KV-head SCF
 * threshold at zero (nothing filtered), repeatedly raise the threshold
 * of the head with the lowest filtering ratio, and stop when the
 * perplexity increase would exceed the budget — keeping the last
 * configuration that met it.
 */

#ifndef LONGSIGHT_CORE_THRESHOLD_TUNER_HH
#define LONGSIGHT_CORE_THRESHOLD_TUNER_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace longsight {

/**
 * One evaluation of a threshold vector.
 */
struct ThresholdEval
{
    double pplIncreasePct = 0.0;        //!< relative perplexity increase
    double overallFilterRatio = 0.0;    //!< aggregate Fig-3 ratio
    std::vector<double> headFilterRatios; //!< per-KV-head ratios
};

/**
 * Outcome of a tuning run.
 */
struct TuneResult
{
    std::vector<int> thresholds;   //!< best thresholds found
    double pplIncreasePct = 0.0;   //!< quality at those thresholds
    double filterRatio = 0.0;      //!< overall ratio at those thresholds
    uint32_t iterations = 0;       //!< evaluator invocations
};

/**
 * Iterative per-KV-head threshold tuner.
 */
class ThresholdTuner
{
  public:
    /** Evaluate a candidate threshold vector. */
    using Evaluator = std::function<ThresholdEval(const std::vector<int> &)>;

    /**
     * @param ppl_budget_pct quality budget (paper: 5 %)
     * @param step initial threshold increment per move (in sign-bit
     *        counts); halves per head on over-budget moves so steep
     *        threshold responses are refined rather than abandoned
     * @param max_iters evaluator-call cap
     */
    ThresholdTuner(double ppl_budget_pct, int step, uint32_t max_iters);

    /**
     * Run the loop.
     *
     * @param evaluate   candidate evaluator (runs the algorithm)
     * @param num_heads  KV-head count
     * @param head_dim   maximum meaningful threshold (concordance <= D)
     */
    TuneResult tune(const Evaluator &evaluate, uint32_t num_heads,
                    uint32_t head_dim) const;

  private:
    double pplBudgetPct_;
    int step_;
    uint32_t maxIters_;
};

} // namespace longsight

#endif // LONGSIGHT_CORE_THRESHOLD_TUNER_HH

/**
 * @file
 * Pluggable candidate-filter backends for the sparse middle region of
 * hybrid attention (ROADMAP item 4). A FilterBackend owns the whole
 * "which middle tokens does this query group attend to" decision —
 * estimation, scoring, and top-k selection — behind one interface, so
 * the consumers (core/hybrid_attention, and through it drex/pfu,
 * core/prefill_attention, and sim/decode_pipeline) stay
 * filter-agnostic. Three families ship:
 *
 *  - **Scf** (the paper's Sign-Concordance Filter): 1-bit packed-sign
 *    concordance scan gates survivors, which are scored full-precision
 *    (or against the INT8 key arena when quantizedScoring is on) and
 *    top-k selected. This backend reproduces the pre-refactor
 *    hybrid-attention pipeline BIT-EXACTLY — selecting it is the
 *    degenerate "today's behaviour" knob.
 *  - **Int8** (QSInference-style low-bit estimation): both query and
 *    keys are symmetric INT8; EVERY middle token gets an 8-bit score
 *    estimate through the exact integer-dot kernels (scalar / AVX2
 *    maddubs / AVX-512 VNNI — bit-identical by construction) and the
 *    top k estimates are selected. More bits than SCF's sign plane,
 *    no survivor scan.
 *  - **Centroid** (CSAttention-style cluster-first scoring): the
 *    middle region is tiled into logical blocks, each summarized by
 *    its mean key; queries score centroids first, descend into the
 *    best keepFraction of blocks, and exact-score only those keys.
 *
 * Contract shared by every backend: per query the selected list is
 * sorted best-first (score descending, index ascending on ties —
 * topk_heap order), indices are LOGICAL token ids in [lo, hi),
 * selection is deterministic, identical across kernel backends
 * (scalar/AVX2/NEON) and across flat vs paged KV layouts, and paged
 * scans are credited to the pool's residency counters.
 */

#ifndef LONGSIGHT_CORE_FILTER_BACKEND_HH
#define LONGSIGHT_CORE_FILTER_BACKEND_HH

#include <cstddef>
#include <cstdint>

#include "core/kv_cache.hh"
#include "tensor/topk_heap.hh"
#include "util/scratch_arena.hh"

namespace longsight {

/** The shipped filter families. */
enum class FilterKind : uint8_t
{
    Scf,      //!< 1-bit sign-concordance scan (the paper's SCF)
    Int8,     //!< INT8 quantized-score estimation over every key
    Centroid, //!< block-centroid scoring, descend into winners
};

/** Human-readable kind name ("scf", "int8", "centroid"). */
const char *filterKindName(FilterKind k);

/** One query group's filter invocation over logical range [lo, hi). */
struct FilterArgs
{
    const float *queries = nullptr; //!< query g at queries + g * stride
    size_t queryStride = 0;
    uint32_t numQueries = 0;
    const KvCache *cache = nullptr;
    size_t lo = 0;           //!< first sparse token (inclusive)
    size_t hi = 0;           //!< one past the last sparse token
    int threshold = 0;       //!< SCF concordance threshold
    float scale = 1.0f;      //!< attention scale folded into scores
    size_t k = 0;            //!< selections per query
    size_t kcap = 0;         //!< heap capacity: min(k, hi - lo)
    bool quantizedScoring = false; //!< SCF: score survivors on INT8 keys
    uint32_t centroidBlockTokens = 128;
    double centroidKeepFraction = 0.25;
};

/** Caller-owned output spans one select() call fills. */
struct FilterSelection
{
    ScoredIndex *selected = nullptr; //!< numQueries x kcap entries
    size_t *numSelected = nullptr;   //!< per-query entry counts
    size_t *survivors = nullptr;     //!< per-query filter-stage counts
};

/**
 * One filter family. Implementations are stateless and shared (the
 * registry below hands out process-wide const instances), so select()
 * must be reentrant: all working memory comes from the caller's
 * scratch frame.
 */
class FilterBackend
{
  public:
    virtual ~FilterBackend() = default;

    virtual const char *name() const = 0;

    /**
     * Select up to args.k middle tokens per query into out.selected
     * (sorted best-first per query), filling out.numSelected and
     * out.survivors. Requires args.hi > args.lo and a non-empty query
     * group; allocation-free at steady state (scratch-frame memory
     * only). Paged caches get their residency counters credited.
     */
    virtual void select(const FilterArgs &args, ScratchFrame &frame,
                        const FilterSelection &out) const = 0;
};

/** The process-wide instance implementing `kind`. */
const FilterBackend &filterBackendFor(FilterKind kind);

} // namespace longsight

#endif // LONGSIGHT_CORE_FILTER_BACKEND_HH

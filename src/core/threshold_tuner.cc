#include "core/threshold_tuner.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

ThresholdTuner::ThresholdTuner(double ppl_budget_pct, int step,
                               uint32_t max_iters)
    : pplBudgetPct_(ppl_budget_pct), step_(step), maxIters_(max_iters)
{
    LS_ASSERT(step > 0, "tuner step must be positive");
    LS_ASSERT(max_iters > 0, "tuner needs at least one iteration");
}

TuneResult
ThresholdTuner::tune(const Evaluator &evaluate, uint32_t num_heads,
                     uint32_t head_dim) const
{
    const int max_threshold = static_cast<int>(head_dim);
    std::vector<int> current(num_heads, 0);
    std::vector<int> step(num_heads, step_); //!< halves on failure
    std::vector<bool> frozen(num_heads, false);

    TuneResult best;
    best.thresholds = current;

    ThresholdEval ev = evaluate(current);
    ++best.iterations;
    best.pplIncreasePct = ev.pplIncreasePct;
    best.filterRatio = ev.overallFilterRatio;
    LS_ASSERT(ev.headFilterRatios.size() == num_heads,
              "evaluator must report one ratio per KV head");

    while (best.iterations < maxIters_) {
        // Pick the non-frozen head with the lowest filter ratio.
        int pick = -1;
        double lowest = 0.0;
        for (uint32_t h = 0; h < num_heads; ++h) {
            if (frozen[h] || current[h] >= max_threshold)
                continue;
            if (pick < 0 || ev.headFilterRatios[h] < lowest) {
                pick = static_cast<int>(h);
                lowest = ev.headFilterRatios[h];
            }
        }
        if (pick < 0)
            break; // every head frozen or saturated

        std::vector<int> candidate = current;
        candidate[pick] =
            std::min(candidate[pick] + step[pick], max_threshold);

        const ThresholdEval cand_ev = evaluate(candidate);
        ++best.iterations;

        if (cand_ev.pplIncreasePct > pplBudgetPct_) {
            // Over budget: refine with a smaller step before giving up
            // on this head — threshold responses can be steep.
            if (step[pick] > 1) {
                step[pick] /= 2;
            } else {
                frozen[static_cast<size_t>(pick)] = true;
            }
            continue;
        }

        current = candidate;
        ev = cand_ev;
        if (cand_ev.overallFilterRatio > best.filterRatio) {
            best.thresholds = current;
            best.filterRatio = cand_ev.overallFilterRatio;
            best.pplIncreasePct = cand_ev.pplIncreasePct;
        }
    }
    return best;
}

} // namespace longsight

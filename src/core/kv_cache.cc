#include "core/kv_cache.hh"

#include <algorithm>

#include "tensor/linalg.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

KvCache::KvCache(uint32_t head_dim)
    : headDim_(head_dim), keys_(0, head_dim), values_(0, head_dim),
      rawSigns_(head_dim), rotatedSigns_(head_dim)
{
    LS_ASSERT(head_dim > 0, "KvCache head dim must be positive");
}

KvCache::KvCache(KvBlockPool &pool)
    : headDim_(pool.headDim()), keys_(0, pool.headDim()),
      values_(0, pool.headDim()), rawSigns_(pool.headDim()),
      rotatedSigns_(pool.headDim()), pool_(&pool)
{
}

KvCache::~KvCache() { releaseAll(); }

KvCache::KvCache(const KvCache &o)
    : headDim_(o.headDim_), keys_(0, o.headDim_), values_(0, o.headDim_),
      rawSigns_(o.headDim_), rotatedSigns_(o.headDim_), pool_(o.pool_)
{
    if (pool_) {
        shareFrom(o);
    } else {
        keys_ = o.keys_;
        values_ = o.values_;
        rawSigns_ = o.rawSigns_;
        rotatedSigns_ = o.rotatedSigns_;
        rotation_ = o.rotation_;
        quantizeKeys_ = o.quantizeKeys_;
        quantData_ = o.quantData_;
        quantScales_ = o.quantScales_;
        reserved_ = o.reserved_;
    }
}

KvCache &
KvCache::operator=(const KvCache &o)
{
    if (this == &o)
        return *this;
    releaseAll();
    headDim_ = o.headDim_;
    pool_ = o.pool_;
    blocks_.clear();
    pagedSize_ = 0;
    if (pool_) {
        keys_ = Matrix(0, headDim_);
        values_ = Matrix(0, headDim_);
        rawSigns_ = SignMatrix(headDim_);
        rotatedSigns_ = SignMatrix(headDim_);
        rotation_.reset();
        quantizeKeys_ = false;
        quantData_.clear();
        quantScales_.clear();
        shareFrom(o);
    } else {
        keys_ = o.keys_;
        values_ = o.values_;
        rawSigns_ = o.rawSigns_;
        rotatedSigns_ = o.rotatedSigns_;
        rotation_ = o.rotation_;
        quantizeKeys_ = o.quantizeKeys_;
        quantData_ = o.quantData_;
        quantScales_ = o.quantScales_;
        reserved_ = o.reserved_;
    }
    return *this;
}

KvCache::KvCache(KvCache &&o) noexcept
    : headDim_(o.headDim_), keys_(std::move(o.keys_)),
      values_(std::move(o.values_)), rawSigns_(std::move(o.rawSigns_)),
      rotatedSigns_(std::move(o.rotatedSigns_)),
      rotation_(std::move(o.rotation_)), quantizeKeys_(o.quantizeKeys_),
      quantData_(std::move(o.quantData_)),
      quantScales_(std::move(o.quantScales_)),
      rotScratch_(std::move(o.rotScratch_)), pool_(o.pool_),
      blocks_(std::move(o.blocks_)), pagedSize_(o.pagedSize_),
      reserved_(o.reserved_)
{
    // The moved-from cache must no longer own the blocks.
    o.pool_ = nullptr;
    o.blocks_.clear();
    o.pagedSize_ = 0;
}

KvCache &
KvCache::operator=(KvCache &&o) noexcept
{
    if (this == &o)
        return *this;
    releaseAll();
    headDim_ = o.headDim_;
    keys_ = std::move(o.keys_);
    values_ = std::move(o.values_);
    rawSigns_ = std::move(o.rawSigns_);
    rotatedSigns_ = std::move(o.rotatedSigns_);
    rotation_ = std::move(o.rotation_);
    quantizeKeys_ = o.quantizeKeys_;
    quantData_ = std::move(o.quantData_);
    quantScales_ = std::move(o.quantScales_);
    rotScratch_ = std::move(o.rotScratch_);
    pool_ = o.pool_;
    blocks_ = std::move(o.blocks_);
    pagedSize_ = o.pagedSize_;
    reserved_ = o.reserved_;
    o.pool_ = nullptr;
    o.blocks_.clear();
    o.pagedSize_ = 0;
    return *this;
}

void
KvCache::releaseAll()
{
    if (!pool_)
        return;
    for (uint32_t b : blocks_)
        pool_->releaseBlock(b);
    blocks_.clear();
    pagedSize_ = 0;
}

/** Copy-construct helper for paged caches: share o's full blocks by
 *  refcount and re-append the partial tail privately, reproducing its
 *  rotation/quantization configuration first so the tail rows are
 *  recomputed bit-identically. */
void
KvCache::shareFrom(const KvCache &o)
{
    LS_ASSERT(pool_ == o.pool_, "shareFrom across pools");
    LS_ASSERT(blocks_.empty() && pagedSize_ == 0,
              "shareFrom target must be empty");
    rotation_ = o.rotation_;
    quantizeKeys_ = o.quantizeKeys_;
    reserved_ = o.reserved_;
    if (quantizeKeys_)
        pool_->ensureQuantized();
    if (reserved_)
        reserve(reserved_);
    const size_t bt = pool_->blockTokens();
    const size_t full = o.pagedSize_ / bt;
    blocks_.reserve(o.blocks_.size());
    for (size_t b = 0; b < full; ++b) {
        pool_->retainBlock(o.blocks_[b]);
        blocks_.push_back(o.blocks_[b]);
    }
    pagedSize_ = full * bt;
    for (size_t i = pagedSize_; i < o.pagedSize_; ++i)
        append(o.keyRow(i), o.valueRow(i));
}

void
KvCache::forkFrom(const KvCache &parent)
{
    LS_ASSERT(pool_ && parent.pool_ == pool_,
              "forkFrom requires paged caches sharing one pool");
    LS_ASSERT(size() == 0, "forkFrom target must be empty");
    shareFrom(parent);
}

size_t
KvCache::publishPrefix(uint64_t hash)
{
    LS_ASSERT(pool_, "publishPrefix requires a paged cache");
    const size_t full = pagedSize_ / pool_->blockTokens();
    if (full == 0)
        return 0;
    if (!pool_->publishPrefix(hash, blocks_.data(), full))
        return 0;
    return full * pool_->blockTokens();
}

size_t
KvCache::adoptPrefix(uint64_t hash)
{
    LS_ASSERT(pool_, "adoptPrefix requires a paged cache");
    LS_ASSERT(size() == 0, "adoptPrefix target must be empty");
    const size_t tokens = pool_->adoptPrefix(hash, blocks_);
    pagedSize_ = tokens;
    return tokens;
}

void
KvCache::append(const std::vector<float> &key, const std::vector<float> &value)
{
    LS_ASSERT(key.size() == headDim_ && value.size() == headDim_,
              "KvCache append dim mismatch");
    append(key.data(), value.data());
}

void
KvCache::append(const float *key, const float *value)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    if (pool_) {
        const size_t bt = pool_->blockTokens();
        const size_t off = pagedSize_ % bt;
        if (off == 0) {
            const uint32_t b = pool_->allocBlock();
            LS_ASSERT(b != kInvalidBlock,
                      "KvBlockPool exhausted: admission control must "
                      "bound concurrent context to the block budget");
            // LS_LINT_ALLOW(alloc): table growth; reserve() preallocates
            blocks_.push_back(b);
        }
        const size_t row = size_t{blocks_.back()} * bt + off;
        pool_->writeToken(row, key, value);
        if (quantizeKeys_)
            pool_->writeQuantized(row, key);
        if (rotation_) {
            rotScratch_.resize(headDim_); // LS_LINT_ALLOW(alloc): sized once, capacity persists
            gemvT(*rotation_, key, rotScratch_.data());
            pool_->writeRotatedSigns(row, rotScratch_.data());
        }
        ++pagedSize_;
        return;
    }
    keys_.appendRow(key);
    values_.appendRow(value);
    rawSigns_.appendRow(key);
    if (quantizeKeys_) {
        // LS_LINT_ALLOW(alloc): amortized growth; reserve() preallocates
        quantData_.resize(quantData_.size() + headDim_);
        // LS_LINT_ALLOW(alloc): amortized growth; reserve() preallocates
        quantScales_.push_back(0.0f);
        quantizeInt8Into(key, headDim_,
                         quantData_.data() + quantData_.size() - headDim_,
                         &quantScales_.back());
    }
    if (rotation_) {
        // Member scratch: capacity persists across appends, so the
        // rotation adds no steady-state allocation to the decode step.
        rotScratch_.resize(headDim_); // LS_LINT_ALLOW(alloc): sized once, capacity persists
        gemvT(*rotation_, key, rotScratch_.data());
        rotatedSigns_.appendRow(rotScratch_.data());
    }
}

void
KvCache::reserve(size_t n)
{
    reserved_ = std::max(reserved_, n);
    if (pool_) {
        blocks_.reserve((n + pool_->blockTokens() - 1) /
                        pool_->blockTokens());
        if (quantizeKeys_)
            pool_->ensureQuantized();
        return;
    }
    keys_.reserveRows(n);
    values_.reserveRows(n);
    rawSigns_.reserveRows(n);
    if (rotation_)
        rotatedSigns_.reserveRows(n);
    if (quantizeKeys_) {
        quantData_.reserve(n * headDim_);
        quantScales_.reserve(n);
    }
}

void
KvCache::appendAll(const Matrix &keys, const Matrix &values)
{
    LS_ASSERT(keys.rows() == values.rows() && keys.cols() == headDim_ &&
                  values.cols() == headDim_,
              "KvCache appendAll shape mismatch");
    for (size_t i = 0; i < keys.rows(); ++i)
        append(keys.row(i), values.row(i));
}

const Matrix &
KvCache::keys() const
{
    LS_ASSERT(!pool_, "keys(): no contiguous view in paged mode; use "
                      "keysStorage() + physRow()/collectSpans()");
    return keys_;
}

const Matrix &
KvCache::values() const
{
    LS_ASSERT(!pool_, "values(): no contiguous view in paged mode; use "
                      "valuesStorage() + physRow()/collectSpans()");
    return values_;
}

void
KvCache::mapToPhysical(const uint32_t *logical, size_t count,
                       uint32_t *physical) const
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    if (!pool_) {
        for (size_t j = 0; j < count; ++j)
            physical[j] = logical[j];
        return;
    }
    const size_t bt = pool_->blockTokens();
    for (size_t j = 0; j < count; ++j) {
        const size_t i = logical[j];
        physical[j] =
            static_cast<uint32_t>(size_t{blocks_[i / bt]} * bt + i % bt);
    }
}

size_t
KvCache::collectSpans(size_t lo, size_t hi, ScanSpan *out) const
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(lo <= hi && hi <= size(), "collectSpans range [", lo, ",",
              hi, ") out of ", size());
    if (lo == hi)
        return 0;
    if (!pool_) {
        out[0] = ScanSpan{lo, hi - lo, lo};
        return 1;
    }
    const size_t bt = pool_->blockTokens();
    size_t n = 0;
    size_t at = lo;
    while (at < hi) {
        const size_t off = at % bt;
        const size_t run = std::min(bt - off, hi - at);
        out[n++] = ScanSpan{size_t{blocks_[at / bt]} * bt + off, run, at};
        at += run;
    }
    return n;
}

void
KvCache::recordFilterScan(const ScanSpan &span, uint64_t rows_scanned,
                          uint64_t survivors) const
{
    if (!pool_)
        return;
    pool_->recordScan(
        static_cast<uint32_t>(span.physBegin / pool_->blockTokens()),
        rows_scanned, survivors);
}

SignBits
KvCache::rawSigns(size_t i) const
{
    LS_ASSERT(i < size(), "rawSigns index out of range");
    if (pool_)
        return pool_->rawSigns().extract(physRow(i));
    return rawSigns_.extract(i);
}

SignBits
KvCache::filterSigns(size_t i) const
{
    LS_ASSERT(i < size(), "filterSigns index out of range");
    return filterSignsStorage().extract(physRow(i));
}

const SignMatrix &
KvCache::filterSignsAll() const
{
    LS_ASSERT(!pool_, "filterSignsAll(): no contiguous view in paged "
                      "mode; use filterSignsStorage() + collectSpans()");
    return rotation_ ? rotatedSigns_ : rawSigns_;
}

/** CoW unshare: give this cache a private copy of every block it
 *  currently shares (refcount > 1). */
void
KvCache::unshareAll()
{
    LS_ASSERT(pool_, "unshareAll on a flat cache");
    for (uint32_t &b : blocks_) {
        if (pool_->refCount(b) <= 1)
            continue;
        const uint32_t fresh = pool_->allocBlock();
        LS_ASSERT(fresh != kInvalidBlock,
                  "KvBlockPool exhausted during copy-on-write unshare");
        pool_->copyBlock(b, fresh);
        pool_->releaseBlock(b);
        b = fresh;
    }
}

void
KvCache::setItqRotation(Matrix rotation)
{
    LS_ASSERT(rotation.rows() == headDim_ && rotation.cols() == headDim_,
              "ITQ rotation must be headDim x headDim");
    rotation_ = std::move(rotation);
    if (pool_) {
        // Rotated sign rows become per-cache content once caches can
        // carry different rotations, so shared blocks must split.
        unshareAll();
        rotScratch_.resize(headDim_);
        for (size_t i = 0; i < pagedSize_; ++i) {
            gemvT(*rotation_, keyRow(i), rotScratch_.data());
            pool_->writeRotatedSigns(physRow(i), rotScratch_.data());
        }
        return;
    }
    rotatedSigns_.clear();
    rotatedSigns_.reserveRows(std::max(reserved_, size()));
    for (size_t i = 0; i < size(); ++i) {
        const std::vector<float> rk = gemvT(*rotation_, keys_.rowVec(i));
        rotatedSigns_.appendRow(rk.data());
    }
}

const Matrix &
KvCache::itqRotation() const
{
    LS_ASSERT(rotation_.has_value(), "no ITQ rotation installed");
    return *rotation_;
}

void
KvCache::enableKeyQuantization()
{
    if (quantizeKeys_)
        return;
    quantizeKeys_ = true;
    if (pool_) {
        // No unshare needed: quantizeInt8Into is a pure function of
        // the key bytes, so sharers write identical arena rows.
        pool_->ensureQuantized();
        for (size_t i = 0; i < pagedSize_; ++i)
            pool_->writeQuantized(physRow(i), keyRow(i));
        return;
    }
    const size_t ceiling = std::max(reserved_, size());
    quantData_.clear();
    quantData_.reserve(ceiling * headDim_);
    quantScales_.clear();
    quantScales_.reserve(ceiling);
    quantData_.resize(size() * headDim_);
    quantScales_.resize(size());
    for (size_t i = 0; i < size(); ++i)
        quantizeInt8Into(keys_.row(i), headDim_,
                         quantData_.data() + i * headDim_,
                         &quantScales_[i]);
}

QuantizedVector
KvCache::quantizedKey(size_t i) const
{
    LS_ASSERT(!pool_, "quantizedKey(): paged caches score via "
                      "scoreKey() against the pool's INT8 arena");
    LS_ASSERT(quantizeKeys_, "key quantization not enabled");
    LS_ASSERT(i < quantScales_.size(), "quantized key out of range");
    QuantizedVector q;
    q.data.assign(quantData_.begin() + i * headDim_,
                  quantData_.begin() + (i + 1) * headDim_);
    q.scale = quantScales_[i];
    return q;
}

float
KvCache::scoreKey(const float *q, size_t i) const
{
    LS_ASSERT(i < size(), "scoreKey index out of range");
    if (pool_) {
        const size_t row = physRow(i);
        if (quantizeKeys_)
            return dotQuantized(pool_->quantizedRow(row),
                                pool_->quantizedScale(row), q, headDim_);
        return dot(q, pool_->keys().row(row), headDim_);
    }
    if (quantizeKeys_)
        return dotQuantized(quantData_.data() + i * headDim_,
                            quantScales_[i], q, headDim_);
    return dot(q, keys_.row(i), headDim_);
}

std::vector<float>
KvCache::toFilterSpace(const std::vector<float> &q) const
{
    LS_ASSERT(q.size() == headDim_, "query dim mismatch");
    if (!rotation_)
        return q;
    return gemvT(*rotation_, q);
}

void
KvCache::toFilterSpace(const float *q, float *out) const
{
    if (!rotation_) {
        for (uint32_t d = 0; d < headDim_; ++d)
            out[d] = q[d];
        return;
    }
    gemvT(*rotation_, q, out);
}

} // namespace longsight

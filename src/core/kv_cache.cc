#include "core/kv_cache.hh"

#include "tensor/linalg.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

KvCache::KvCache(uint32_t head_dim)
    : headDim_(head_dim), keys_(0, head_dim), values_(0, head_dim),
      rawSigns_(head_dim), rotatedSigns_(head_dim)
{
    LS_ASSERT(head_dim > 0, "KvCache head dim must be positive");
}

void
KvCache::append(const std::vector<float> &key, const std::vector<float> &value)
{
    LS_ASSERT(key.size() == headDim_ && value.size() == headDim_,
              "KvCache append dim mismatch");
    append(key.data(), value.data());
}

void
KvCache::append(const float *key, const float *value)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    keys_.appendRow(key);
    values_.appendRow(value);
    rawSigns_.appendRow(key);
    if (quantizeKeys_)
        // LS_LINT_ALLOW(alloc): amortized append; capacity persists
        quantizedKeys_.push_back(quantizeInt8(key, headDim_));
    if (rotation_) {
        // Member scratch: capacity persists across appends, so the
        // rotation adds no steady-state allocation to the decode step.
        rotScratch_.resize(headDim_); // LS_LINT_ALLOW(alloc): sized once, capacity persists
        gemvT(*rotation_, key, rotScratch_.data());
        rotatedSigns_.appendRow(rotScratch_.data());
    }
}

void
KvCache::reserve(size_t n)
{
    keys_.reserveRows(n);
    values_.reserveRows(n);
    rawSigns_.reserveRows(n);
    if (rotation_)
        rotatedSigns_.reserveRows(n);
    if (quantizeKeys_)
        quantizedKeys_.reserve(n);
}

void
KvCache::appendAll(const Matrix &keys, const Matrix &values)
{
    LS_ASSERT(keys.rows() == values.rows() && keys.cols() == headDim_ &&
                  values.cols() == headDim_,
              "KvCache appendAll shape mismatch");
    for (size_t i = 0; i < keys.rows(); ++i)
        append(keys.rowVec(i), values.rowVec(i));
}

SignBits
KvCache::filterSigns(size_t i) const
{
    LS_ASSERT(i < size(), "filterSigns index out of range");
    return rotation_ ? rotatedSigns_.extract(i) : rawSigns_.extract(i);
}

const SignMatrix &
KvCache::filterSignsAll() const
{
    return rotation_ ? rotatedSigns_ : rawSigns_;
}

void
KvCache::setItqRotation(Matrix rotation)
{
    LS_ASSERT(rotation.rows() == headDim_ && rotation.cols() == headDim_,
              "ITQ rotation must be headDim x headDim");
    rotation_ = std::move(rotation);
    rotatedSigns_.clear();
    rotatedSigns_.reserveRows(size());
    for (size_t i = 0; i < size(); ++i) {
        const std::vector<float> rk = gemvT(*rotation_, keys_.rowVec(i));
        rotatedSigns_.appendRow(rk.data());
    }
}

const Matrix &
KvCache::itqRotation() const
{
    LS_ASSERT(rotation_.has_value(), "no ITQ rotation installed");
    return *rotation_;
}

void
KvCache::enableKeyQuantization()
{
    if (quantizeKeys_)
        return;
    quantizeKeys_ = true;
    quantizedKeys_.clear();
    quantizedKeys_.reserve(size());
    for (size_t i = 0; i < size(); ++i)
        quantizedKeys_.push_back(quantizeInt8(keys_.row(i), headDim_));
}

const QuantizedVector &
KvCache::quantizedKey(size_t i) const
{
    LS_ASSERT(quantizeKeys_, "key quantization not enabled");
    LS_ASSERT(i < quantizedKeys_.size(), "quantized key out of range");
    return quantizedKeys_[i];
}

float
KvCache::scoreKey(const float *q, size_t i) const
{
    LS_ASSERT(i < size(), "scoreKey index out of range");
    if (quantizeKeys_)
        return dotQuantized(quantizedKeys_[i], q);
    return dot(q, keys_.row(i), headDim_);
}

std::vector<float>
KvCache::toFilterSpace(const std::vector<float> &q) const
{
    LS_ASSERT(q.size() == headDim_, "query dim mismatch");
    if (!rotation_)
        return q;
    return gemvT(*rotation_, q);
}

void
KvCache::toFilterSpace(const float *q, float *out) const
{
    if (!rotation_) {
        for (uint32_t d = 0; d < headDim_; ++d)
            out[d] = q[d];
        return;
    }
    gemvT(*rotation_, q, out);
}

} // namespace longsight

#include "core/kv_block_pool.hh"

#include <algorithm>

#include "tensor/quantized.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

KvBlockPool::KvBlockPool(uint32_t head_dim, uint32_t block_tokens,
                         uint32_t num_blocks, uint32_t hbm_budget_blocks)
    : headDim_(head_dim), blockTokens_(block_tokens),
      numBlocks_(num_blocks), hbmBudget_(hbm_budget_blocks),
      keys_(size_t{num_blocks} * block_tokens, head_dim),
      values_(size_t{num_blocks} * block_tokens, head_dim),
      rawSigns_(head_dim), rotatedSigns_(head_dim)
{
    LS_ASSERT(head_dim > 0, "KvBlockPool head dim must be positive");
    LS_ASSERT(block_tokens > 0, "KvBlockPool block size must be positive");
    LS_ASSERT(num_blocks > 0, "KvBlockPool needs at least one block");
    const size_t rows = size_t{num_blocks} * block_tokens;
    rawSigns_.resizeRows(rows);
    rotatedSigns_.resizeRows(rows);
    refs_.assign(num_blocks, 0);
    tier_.assign(num_blocks, static_cast<uint8_t>(Tier::Expander));
    scanned_ = std::make_unique<std::atomic<uint64_t>[]>(num_blocks);
    survivors_ = std::make_unique<std::atomic<uint64_t>[]>(num_blocks);
    for (uint32_t b = 0; b < num_blocks; ++b) {
        scanned_[b].store(0, std::memory_order_relaxed);
        survivors_[b].store(0, std::memory_order_relaxed);
    }
    // LIFO free list, lowest block on top: single-threaded fills draw
    // blocks in ascending physical order, which keeps the paged-vs-flat
    // differential tests easy to reason about.
    free_.reserve(num_blocks);
    for (uint32_t b = num_blocks; b > 0; --b)
        free_.push_back(b - 1);
}

uint32_t
KvBlockPool::usedBlocks() const
{
    SpinGuard g(lock_);
    return numBlocks_ - static_cast<uint32_t>(free_.size());
}

uint32_t
KvBlockPool::freeBlocks() const
{
    SpinGuard g(lock_);
    return static_cast<uint32_t>(free_.size());
}

double
KvBlockPool::occupancy() const
{
    return static_cast<double>(usedBlocks()) /
           static_cast<double>(numBlocks_);
}

void
KvBlockPool::writeToken(size_t phys_row, const float *key,
                        const float *value)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    keys_.setRow(phys_row, key);
    values_.setRow(phys_row, value);
    rawSigns_.setRow(phys_row, key);
}

void
KvBlockPool::writeRotatedSigns(size_t phys_row, const float *rotated_key)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    rotatedSigns_.setRow(phys_row, rotated_key);
}

void
KvBlockPool::writeQuantized(size_t phys_row, const float *key)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(!quantScales_.empty(),
              "writeQuantized before ensureQuantized");
    quantizeInt8Into(key, headDim_, quantData_.data() + phys_row * headDim_,
                     quantScales_.data() + phys_row);
}

void
KvBlockPool::ensureQuantized()
{
    if (!quantScales_.empty())
        return;
    const size_t rows = size_t{numBlocks_} * blockTokens_;
    quantData_.assign(rows * headDim_, 0);
    quantScales_.assign(rows, 1.0f);
}

const int8_t *
KvBlockPool::quantizedRow(size_t phys_row) const
{
    LS_ASSERT(!quantScales_.empty(), "quantized arena not allocated");
    return quantData_.data() + phys_row * headDim_;
}

float
KvBlockPool::quantizedScale(size_t phys_row) const
{
    LS_ASSERT(phys_row < quantScales_.size(),
              "quantizedScale row out of range");
    return quantScales_[phys_row];
}

uint32_t
KvBlockPool::allocBlock()
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    SpinGuard g(lock_);
    if (free_.empty())
        return kInvalidBlock;
    const uint32_t b = free_.back();
    free_.pop_back();
    refs_[b] = 1;
    tier_[b] = static_cast<uint8_t>(Tier::Expander);
    scanned_[b].store(0, std::memory_order_relaxed);
    survivors_[b].store(0, std::memory_order_relaxed);
    return b;
}

void
KvBlockPool::retainBlock(uint32_t block)
{
    SpinGuard g(lock_);
    LS_ASSERT(block < numBlocks_ && refs_[block] > 0,
              "retain of unallocated block ", block);
    ++refs_[block];
}

void
KvBlockPool::releaseBlock(uint32_t block)
{
    SpinGuard g(lock_);
    LS_ASSERT(block < numBlocks_ && refs_[block] > 0,
              "release of unallocated block ", block);
    if (--refs_[block] == 0)
        free_.push_back(block); // LS_LINT_ALLOW(alloc): capacity reserved at construction
}

uint32_t
KvBlockPool::refCount(uint32_t block) const
{
    SpinGuard g(lock_);
    LS_ASSERT(block < numBlocks_, "refCount block out of range");
    return refs_[block];
}

void
KvBlockPool::copyBlock(uint32_t src, uint32_t dst)
{
    LS_ASSERT(src < numBlocks_ && dst < numBlocks_ && src != dst,
              "copyBlock bad pair ", src, " -> ", dst);
    const size_t srow = size_t{src} * blockTokens_;
    const size_t drow = size_t{dst} * blockTokens_;
    for (size_t o = 0; o < blockTokens_; ++o) {
        keys_.setRow(drow + o, keys_.row(srow + o));
        values_.setRow(drow + o, values_.row(srow + o));
    }
    const size_t wpr = rawSigns_.wordsPerRow();
    for (size_t o = 0; o < blockTokens_; ++o) {
        uint64_t *rd = rawSigns_.data() + (drow + o) * wpr;
        const uint64_t *rs = rawSigns_.data() + (srow + o) * wpr;
        for (size_t w = 0; w < wpr; ++w)
            rd[w] = rs[w];
        uint64_t *td = rotatedSigns_.data() + (drow + o) * wpr;
        const uint64_t *ts = rotatedSigns_.data() + (srow + o) * wpr;
        for (size_t w = 0; w < wpr; ++w)
            td[w] = ts[w];
    }
    if (!quantScales_.empty()) {
        for (size_t o = 0; o < blockTokens_; ++o) {
            const int8_t *qs = quantData_.data() + (srow + o) * headDim_;
            int8_t *qd = quantData_.data() + (drow + o) * headDim_;
            for (size_t i = 0; i < headDim_; ++i)
                qd[i] = qs[i];
            quantScales_[drow + o] = quantScales_[srow + o];
        }
    }
}

void
KvBlockPool::recordScan(uint32_t block, uint64_t rows_scanned,
                        uint64_t survivors)
{
    LS_HOT_PATH();
    LS_NO_LOCK();
    LS_ASSERT(block < numBlocks_, "recordScan block out of range");
    scanned_[block].fetch_add(rows_scanned, std::memory_order_relaxed);
    survivors_[block].fetch_add(survivors, std::memory_order_relaxed);
}

Tier
KvBlockPool::tier(uint32_t block) const
{
    LS_ASSERT(block < numBlocks_, "tier block out of range");
    SpinGuard g(lock_);
    return static_cast<Tier>(tier_[block]);
}

uint32_t
KvBlockPool::hbmResident() const
{
    SpinGuard g(lock_);
    uint32_t n = 0;
    for (uint32_t b = 0; b < numBlocks_; ++b)
        if (tier_[b] == static_cast<uint8_t>(Tier::Hbm))
            ++n;
    return n;
}

uint32_t
KvBlockPool::rebalance()
{
    // Snapshot used blocks and their survivor totals under the lock,
    // then rank outside it. Ties break toward the lower block id so
    // the ranking is deterministic.
    struct Ranked
    {
        uint64_t survivors;
        uint32_t block;
    };
    std::vector<Ranked> used;
    {
        SpinGuard g(lock_);
        used.reserve(numBlocks_ - free_.size());
        for (uint32_t b = 0; b < numBlocks_; ++b)
            if (refs_[b] > 0)
                used.push_back(
                    {survivors_[b].load(std::memory_order_relaxed), b});
    }
    std::sort(used.begin(), used.end(),
              [](const Ranked &a, const Ranked &b) {
                  if (a.survivors != b.survivors)
                      return a.survivors > b.survivors;
                  return a.block < b.block;
              });

    // Reacquire to apply: tier_, the promotion/eviction counters, and
    // hbmBudget_ are all guarded state, and concurrent readers
    // (tier(), hbmResident(), the counter accessors) must never see a
    // half-applied re-ranking.
    uint32_t changes = 0;
    {
        SpinGuard g(lock_);
        for (size_t i = 0; i < used.size(); ++i) {
            const uint32_t b = used[i].block;
            const uint8_t want = i < hbmBudget_
                                     ? static_cast<uint8_t>(Tier::Hbm)
                                     : static_cast<uint8_t>(Tier::Expander);
            if (tier_[b] != want) {
                ++changes;
                if (want == static_cast<uint8_t>(Tier::Hbm))
                    ++promotions_;
                else
                    ++evictions_;
                tier_[b] = want;
            }
            // Age the popularity signal so a block must keep surviving
            // scans to keep its HBM slot.
            survivors_[b].store(used[i].survivors / 2,
                                std::memory_order_relaxed);
            scanned_[b].store(
                scanned_[b].load(std::memory_order_relaxed) / 2,
                std::memory_order_relaxed);
        }
    }
    return changes;
}

uint64_t
KvBlockPool::survivorRows(uint32_t block) const
{
    LS_ASSERT(block < numBlocks_, "survivorRows block out of range");
    return survivors_[block].load(std::memory_order_relaxed);
}

uint64_t
KvBlockPool::scannedRows(uint32_t block) const
{
    LS_ASSERT(block < numBlocks_, "scannedRows block out of range");
    return scanned_[block].load(std::memory_order_relaxed);
}

bool
KvBlockPool::publishPrefix(uint64_t hash, const uint32_t *blocks,
                           size_t count)
{
    LS_ASSERT(count > 0, "publishPrefix needs at least one block");
    SpinGuard g(lock_);
    auto [it, inserted] = prefixes_.try_emplace(
        hash, std::vector<uint32_t>(blocks, blocks + count));
    if (!inserted)
        return false;
    for (size_t i = 0; i < count; ++i) {
        LS_ASSERT(blocks[i] < numBlocks_ && refs_[blocks[i]] > 0,
                  "publishPrefix of unallocated block ", blocks[i]);
        ++refs_[blocks[i]]; // registry pin
    }
    return true;
}

size_t
KvBlockPool::adoptPrefix(uint64_t hash, std::vector<uint32_t> &blocks_out)
{
    SpinGuard g(lock_);
    auto it = prefixes_.find(hash);
    if (it == prefixes_.end()) {
        ++prefixMisses_;
        return 0;
    }
    ++prefixHits_;
    for (uint32_t b : it->second) {
        ++refs_[b];
        blocks_out.push_back(b);
    }
    const size_t tokens = it->second.size() * blockTokens_;
    prefixSharedTokens_ += tokens;
    return tokens;
}

void
KvBlockPool::unpublishPrefix(uint64_t hash)
{
    std::vector<uint32_t> pinned;
    {
        SpinGuard g(lock_);
        auto it = prefixes_.find(hash);
        if (it == prefixes_.end())
            return;
        pinned = std::move(it->second);
        prefixes_.erase(it);
    }
    for (uint32_t b : pinned)
        releaseBlock(b);
}

} // namespace longsight

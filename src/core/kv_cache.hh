/**
 * @file
 * Per-(user, layer, KV-head) Key/Value store. This is the functional
 * twin of the paper's "vector database" view of the KV cache (§4):
 * post-RoPE keys and values indexed by token position, with packed
 * sign bits maintained incrementally for SCF. When an ITQ rotation is
 * installed, sign bits are taken from the rotated keys while scoring
 * still uses the original keys (an orthogonal rotation leaves dot
 * products unchanged, so only the one-bit quantization sees it).
 */

#ifndef LONGSIGHT_CORE_KV_CACHE_HH
#define LONGSIGHT_CORE_KV_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "tensor/quantized.hh"
#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "tensor/tensor.hh"

namespace longsight {

/**
 * Growable KV store for one attention head's context.
 */
class KvCache
{
  public:
    explicit KvCache(uint32_t head_dim);

    uint32_t headDim() const { return headDim_; }
    size_t size() const { return keys_.rows(); }

    /** Append one (post-RoPE key, value) pair. */
    void append(const std::vector<float> &key, const std::vector<float> &value);

    /** Raw-span append (key/value: headDim() floats each). */
    void append(const float *key, const float *value);

    /**
     * Reserve capacity for n total entries across every backing store
     * (keys, values, sign rows, quantized keys), so subsequent appends
     * up to n perform no heap allocation. Decode loops that know their
     * context ceiling call this once up front to keep the steady-state
     * step allocation-free.
     */
    void reserve(size_t n);

    /** Bulk-append rows of two (n x headDim) matrices. */
    void appendAll(const Matrix &keys, const Matrix &values);

    const Matrix &keys() const { return keys_; }
    const Matrix &values() const { return values_; }

    /** Sign bits of the raw (unrotated) key i. */
    SignBits rawSigns(size_t i) const { return rawSigns_.extract(i); }

    /**
     * Sign bits used for filtering: ITQ-rotated when a rotation is
     * installed, raw otherwise.
     */
    SignBits filterSigns(size_t i) const;

    /**
     * All filter sign bits as one contiguous packed matrix — what the
     * batch-scan kernels and the PFU model consume directly.
     */
    const SignMatrix &filterSignsAll() const;

    /**
     * Install (or replace) the ITQ rotation; recomputes the rotated
     * sign bits of every stored key.
     */
    void setItqRotation(Matrix rotation);

    bool hasItqRotation() const { return rotation_.has_value(); }
    const Matrix &itqRotation() const;

    /**
     * Rotate a query into filter space (x * R); identity copy when no
     * rotation is installed.
     */
    std::vector<float> toFilterSpace(const std::vector<float> &q) const;

    /** toFilterSpace into caller storage (out: headDim() floats). */
    void toFilterSpace(const float *q, float *out) const;

    /**
     * Maintain INT8-quantized copies of the keys (one scale per key)
     * so scoring can run on half-width fetches; quantizes existing
     * keys and keeps future appends quantized.
     */
    void enableKeyQuantization();

    bool keysQuantized() const { return quantizeKeys_; }

    /** Quantized key i (requires enableKeyQuantization()). */
    const QuantizedVector &quantizedKey(size_t i) const;

    /**
     * q . key_i using the INT8 key when quantization is enabled,
     * full precision otherwise.
     */
    float scoreKey(const float *q, size_t i) const;

  private:
    uint32_t headDim_;
    Matrix keys_;
    Matrix values_;
    SignMatrix rawSigns_;
    SignMatrix rotatedSigns_;
    std::optional<Matrix> rotation_;
    bool quantizeKeys_ = false;
    std::vector<QuantizedVector> quantizedKeys_;
    std::vector<float> rotScratch_; //!< reused rotated-key buffer
};

} // namespace longsight

#endif // LONGSIGHT_CORE_KV_CACHE_HH

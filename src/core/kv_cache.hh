/**
 * @file
 * Per-(user, layer, KV-head) Key/Value store. This is the functional
 * twin of the paper's "vector database" view of the KV cache (§4):
 * post-RoPE keys and values indexed by token position, with packed
 * sign bits maintained incrementally for SCF. When an ITQ rotation is
 * installed, sign bits are taken from the rotated keys while scoring
 * still uses the original keys (an orthogonal rotation leaves dot
 * products unchanged, so only the one-bit quantization sees it).
 *
 * Two storage modes share the one interface:
 *
 *  - **Flat** (the default, `KvCache(head_dim)`): every store is a
 *    private, contiguous append-only buffer; logical token i is
 *    physical row i.
 *  - **Paged** (`KvCache(pool)`): the cache owns a *block table* — a
 *    list of fixed-size block ids in a shared KvBlockPool — and
 *    logical token i lives at physical row
 *    `blocks[i / blockTokens] * blockTokens + i % blockTokens`.
 *    Blocks support copy-on-write prefix sharing (forkFrom /
 *    publishPrefix / adoptPrefix) and carry the SCF survivor counters
 *    that drive HBM-vs-expander residency.
 *
 * Paged consumers scan through collectSpans(): each ScanSpan is one
 * contiguous physical run covering an ascending logical range, so the
 * span-aware kernel drivers (tensor/kernels.hh) produce results
 * element-identical to the flat layout for any block size.
 */

#ifndef LONGSIGHT_CORE_KV_CACHE_HH
#define LONGSIGHT_CORE_KV_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/kv_block_pool.hh"
#include "tensor/kernels.hh"
#include "tensor/quantized.hh"
#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "tensor/tensor.hh"

namespace longsight {

/**
 * Growable KV store for one attention head's context.
 */
class KvCache
{
  public:
    /** Flat mode: private contiguous storage. */
    explicit KvCache(uint32_t head_dim);

    /** Paged mode: block-table view over a shared pool. The pool must
     *  outlive every cache built on it. */
    explicit KvCache(KvBlockPool &pool);

    ~KvCache();
    KvCache(const KvCache &o);
    KvCache &operator=(const KvCache &o);
    KvCache(KvCache &&o) noexcept;
    KvCache &operator=(KvCache &&o) noexcept;

    bool paged() const { return pool_ != nullptr; }

    uint32_t headDim() const { return headDim_; }
    size_t size() const { return pool_ ? pagedSize_ : keys_.rows(); }

    /** Append one (post-RoPE key, value) pair. */
    void append(const std::vector<float> &key, const std::vector<float> &value);

    /** Raw-span append (key/value: headDim() floats each). */
    void append(const float *key, const float *value);

    /**
     * Reserve capacity for n total entries across every backing store
     * (keys, values, sign rows, quantized keys), so subsequent appends
     * up to n perform no heap allocation. Decode loops that know their
     * context ceiling call this once up front to keep the steady-state
     * step allocation-free. The ceiling is remembered: enabling ITQ
     * rotation or key quantization later re-applies it to the stores
     * those features add.
     */
    void reserve(size_t n);

    /** Bulk-append rows of two (n x headDim) matrices. */
    void appendAll(const Matrix &keys, const Matrix &values);

    /** Flat-mode contiguous views (assert in paged mode — paged
     *  consumers go through the *Storage()/row accessors below). */
    const Matrix &keys() const;
    const Matrix &values() const;

    /** Backing store holding this cache's key rows (pool storage in
     *  paged mode); index with physRow(). */
    const Matrix &keysStorage() const { return pool_ ? pool_->keys() : keys_; }
    const Matrix &valuesStorage() const
    {
        return pool_ ? pool_->values() : values_;
    }

    /** Physical storage row of logical token i. */
    size_t physRow(size_t i) const
    {
        if (!pool_)
            return i;
        const size_t bt = pool_->blockTokens();
        return size_t{blocks_[i / bt]} * bt + i % bt;
    }

    const float *keyRow(size_t i) const
    {
        return keysStorage().row(physRow(i));
    }
    const float *valueRow(size_t i) const
    {
        return valuesStorage().row(physRow(i));
    }

    /** Map `count` logical indices to physical rows (hot: the sparse
     *  gather path translates selected token ids before fetching). */
    void mapToPhysical(const uint32_t *logical, size_t count,
                       uint32_t *physical) const;

    /** Upper bound on collectSpans(lo, hi) output length. */
    size_t maxSpans(size_t lo, size_t hi) const
    {
        if (!pool_)
            return 1;
        return (hi - lo + pool_->blockTokens() - 1) / pool_->blockTokens() +
               1;
    }

    /**
     * Decompose logical range [lo, hi) into contiguous physical spans
     * in ascending logical order (never crossing a block boundary in
     * paged mode; the single identity span when flat). Returns the
     * span count written to out (capacity: maxSpans(lo, hi)).
     */
    size_t collectSpans(size_t lo, size_t hi, ScanSpan *out) const;

    /**
     * The single span starting at logical lo, clamped to hi — the
     * incremental form of collectSpans() for walkers that need no
     * span array: advance by .count until hi.
     */
    ScanSpan spanAt(size_t lo, size_t hi) const
    {
        if (!pool_)
            return ScanSpan{lo, hi - lo, lo};
        const size_t bt = pool_->blockTokens();
        const size_t off = lo % bt;
        return ScanSpan{size_t{blocks_[lo / bt]} * bt + off,
                        std::min(bt - off, hi - lo), lo};
    }

    /**
     * Credit a filter pass over one collectSpans() span to the pool's
     * residency counters (no-op when flat). rows_scanned counts
     * query x row candidate pairs; survivors those past threshold.
     */
    void recordFilterScan(const ScanSpan &span, uint64_t rows_scanned,
                          uint64_t survivors) const;

    /** Sign bits of the raw (unrotated) key i. */
    SignBits rawSigns(size_t i) const;

    /**
     * Sign bits used for filtering: ITQ-rotated when a rotation is
     * installed, raw otherwise.
     */
    SignBits filterSigns(size_t i) const;

    /**
     * All filter sign bits as one contiguous packed matrix — what the
     * batch-scan kernels and the PFU model consume directly (flat
     * mode only; paged consumers pair filterSignsStorage() with
     * collectSpans()).
     */
    const SignMatrix &filterSignsAll() const;

    /** Backing sign store for filtering (rotation-aware; pool storage
     *  in paged mode); index with physRow() / collectSpans(). */
    const SignMatrix &filterSignsStorage() const
    {
        if (pool_)
            return rotation_ ? pool_->rotatedSigns() : pool_->rawSigns();
        return rotation_ ? rotatedSigns_ : rawSigns_;
    }

    /**
     * Install (or replace) the ITQ rotation; recomputes the rotated
     * sign bits of every stored key. In paged mode this first unshares
     * any CoW-shared blocks: rotated sign rows are per-cache content
     * once caches can carry different rotations.
     */
    void setItqRotation(Matrix rotation);

    bool hasItqRotation() const { return rotation_.has_value(); }
    const Matrix &itqRotation() const;

    /**
     * Rotate a query into filter space (x * R); identity copy when no
     * rotation is installed.
     */
    std::vector<float> toFilterSpace(const std::vector<float> &q) const;

    /** toFilterSpace into caller storage (out: headDim() floats). */
    void toFilterSpace(const float *q, float *out) const;

    /**
     * Maintain INT8-quantized copies of the keys (one scale per key)
     * so scoring can run on half-width fetches; quantizes existing
     * keys and keeps future appends quantized. Safe on shared blocks:
     * quantization is a deterministic function of the key bytes, so
     * every sharer writes identical arena rows.
     */
    void enableKeyQuantization();

    bool keysQuantized() const { return quantizeKeys_; }

    /** Materialize quantized key i (flat mode; paged scoring goes
     *  through scoreKey(), which reads the pool's INT8 arena).
     *  Allocates — a test/analysis accessor, not a hot path; the
     *  backing store is a flat arena shaped like the pool's. */
    QuantizedVector quantizedKey(size_t i) const;

    /**
     * q . key_i using the INT8 key when quantization is enabled,
     * full precision otherwise.
     */
    float scoreKey(const float *q, size_t i) const;

    /** Base pointers of the INT8 key arena the batch kernels score
     *  against (flat: private size() x headDim() arena; paged: the
     *  pool arena — index with physRow() either way). Valid once
     *  keysQuantized(). */
    const int8_t *quantizedStorage() const
    {
        return pool_ ? pool_->quantizedData() : quantData_.data();
    }
    const float *quantizedScalesStorage() const
    {
        return pool_ ? pool_->quantizedScales() : quantScales_.data();
    }

    // ---- Paged-mode sharing ----------------------------------------
    /**
     * Become a copy-on-write fork of `parent` (paged, same pool; this
     * cache must be empty): full blocks are shared by refcount, the
     * partial tail block is re-appended into private storage so this
     * cache's appends never touch shared rows.
     */
    void forkFrom(const KvCache &parent);

    /** Publish this cache's full blocks as prefix `hash` in the pool
     *  registry. Returns tokens published (0 if none or taken). */
    size_t publishPrefix(uint64_t hash);

    /** Adopt published prefix `hash` (cache must be empty). Returns
     *  tokens adopted (0 on miss). */
    size_t adoptPrefix(uint64_t hash);

  private:
    void shareFrom(const KvCache &o);
    void releaseAll();
    void unshareAll();

    uint32_t headDim_;
    Matrix keys_;
    Matrix values_;
    SignMatrix rawSigns_;
    SignMatrix rotatedSigns_;
    std::optional<Matrix> rotation_;
    bool quantizeKeys_ = false;
    std::vector<int8_t> quantData_;  //!< size() x headDim_ INT8 arena
    std::vector<float> quantScales_; //!< one scale per key
    std::vector<float> rotScratch_; //!< reused rotated-key buffer

    KvBlockPool *pool_ = nullptr;   //!< non-null in paged mode
    std::vector<uint32_t> blocks_;  //!< block table (paged)
    size_t pagedSize_ = 0;          //!< logical tokens (paged)
    size_t reserved_ = 0;           //!< remembered reserve() ceiling
};

} // namespace longsight

#endif // LONGSIGHT_CORE_KV_CACHE_HH

/**
 * @file
 * Filter-ratio bookkeeping matching the Figure-3 metric: the ratio of
 * KV entries a dense baseline would access to the entries the sparse
 * path actually touches. Dense attention reads one Key and one Value
 * per context token (2 entries/token); the sparse path reads one Key
 * per SCF survivor plus one Value per top-k selection (the survivor's
 * Key was already read while scoring). With threshold 0 and unbounded
 * k the ratio is exactly 1.
 */

#ifndef LONGSIGHT_CORE_FILTER_STATS_HH
#define LONGSIGHT_CORE_FILTER_STATS_HH

#include <cstdint>

namespace longsight {

/**
 * Accumulated sparse-attention access counts over many evaluations.
 */
struct FilterStats
{
    uint64_t rawKeys = 0;      //!< sparse-region tokens (dense would read all)
    uint64_t survivorKeys = 0; //!< keys passing SCF (scored at full precision)
    uint64_t selectedKeys = 0; //!< top-k selections (values retrieved)
    uint64_t evaluations = 0;  //!< number of (query, head) evaluations

    /** Record one evaluation's counts. */
    void record(uint64_t raw, uint64_t survivors, uint64_t selected);

    void merge(const FilterStats &other);

    /** Dense-entries : sparse-entries ratio (>= 1 when filtering). */
    double filterRatio() const;

    /** Fraction of dense accesses avoided: 1 - 1/filterRatio. */
    double sparsity() const;

    /** Mean fraction of sparse-region keys passing SCF. */
    double survivorFraction() const;
};

} // namespace longsight

#endif // LONGSIGHT_CORE_FILTER_STATS_HH

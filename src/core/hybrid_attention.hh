/**
 * @file
 * LongSightAttn — the paper's hybrid dense-sparse attention module
 * (§5, §6). For each query and KV head:
 *
 *   1. *Dense part*: attention-sink tokens (the first few, §8.1.3) and
 *      a sliding window of the W most recent tokens are always
 *      attended, at full precision (on the GPU in the real system).
 *   2. *Sparse part*: the remaining middle region is filtered with
 *      Sign-Concordance Filtering in (ITQ-rotated) sign space,
 *      survivors are scored with full-precision dot products, and the
 *      top-k survivors are selected (on DReX in the real system).
 *   3. A single softmax over the combined candidate set produces the
 *      output (GPU-side step 5-7 of Figure 2b).
 *
 * This class is the functional reference: the DReX device model must
 * produce bit-identical selections, and the exactness property
 * (threshold 0 + unbounded k == dense attention) is tested against it.
 */

#ifndef LONGSIGHT_CORE_HYBRID_ATTENTION_HH
#define LONGSIGHT_CORE_HYBRID_ATTENTION_HH

#include <cstdint>
#include <vector>

#include "core/filter_backend.hh"
#include "core/filter_stats.hh"
#include "core/kv_cache.hh"

namespace longsight {

/**
 * Tunable parameters of hybrid attention (§8.1.3 defaults).
 */
struct LongSightConfig
{
    uint32_t windowSize = 1024; //!< dense sliding window W
    uint32_t topK = 1024;       //!< k, per KV head
    uint32_t sinkTokens = 16;   //!< attention-sink prefix tokens
    int defaultThreshold = 0;   //!< SCF threshold when not set per head

    /**
     * Score SCF survivors against INT8-quantized keys (halves the
     * NMA's per-survivor fetch). Selection may differ slightly from
     * full precision; the combined softmax on the GPU still uses
     * full-precision keys. Requires KvCache::enableKeyQuantization().
     */
    bool quantizedScoring = false;

    /**
     * Candidate filter family for the sparse middle region (see
     * core/filter_backend.hh). FilterKind::Scf is the paper's
     * pipeline and reproduces the pre-pluggable behaviour
     * bit-exactly; Int8 and Centroid are the estimation-family
     * alternatives the Pareto harness sweeps against it.
     */
    FilterKind filter = FilterKind::Scf;

    /** Centroid backend: logical tokens summarized per block. */
    uint32_t centroidBlockTokens = 128;

    /** Centroid backend: fraction of blocks descended into. */
    double centroidKeepFraction = 0.25;

    /** Maximum k the DReX NMA hardware supports (§7.2). */
    static constexpr uint32_t kMaxHardwareTopK = 1024;
};

/**
 * Result of one hybrid attention evaluation for a single query head.
 */
struct HeadAttentionResult
{
    std::vector<float> output;      //!< headDim-long attention output
    std::vector<uint32_t> attended; //!< sorted global token indices used
    uint64_t sparseRaw = 0;         //!< sparse-region size
    uint64_t sparseSurvivors = 0;   //!< keys passing SCF
    uint64_t sparseSelected = 0;    //!< top-k selections
    bool usedSparse = false;        //!< context long enough to offload
};

/**
 * Hybrid dense-sparse attention over per-head KvCaches.
 */
class LongSightAttn
{
  public:
    /**
     * @param cfg hybrid parameters
     * @param num_kv_heads KV-head count (thresholds are per KV head)
     */
    LongSightAttn(LongSightConfig cfg, uint32_t num_kv_heads);

    const LongSightConfig &config() const { return cfg_; }
    uint32_t numKvHeads() const { return numKvHeads_; }

    /** Per-KV-head SCF threshold access. */
    void setThreshold(uint32_t kv_head, int threshold);
    void setAllThresholds(const std::vector<int> &thresholds);
    int threshold(uint32_t kv_head) const;

    /**
     * Evaluate hybrid attention for one query against one KV head's
     * cache. The query is a post-RoPE headDim vector (queries of all
     * heads in a GQA group use the same cache and threshold).
     */
    HeadAttentionResult computeHead(const std::vector<float> &q,
                                    const KvCache &cache,
                                    uint32_t kv_head) const;

    /**
     * computeHead into an existing result — the decode hot-path form.
     * `q` is a raw headDim span; `r`'s vectors are cleared and refilled
     * in place (their capacity is reused, so repeated calls on the
     * same result object are heap-allocation-free). All intermediate
     * buffers live in the calling thread's scratch arena; the SCF →
     * score → select stage runs through the fused batchScoreSelect
     * kernel without materializing survivor or score vectors.
     */
    void computeHeadInto(const float *q, const KvCache &cache,
                         uint32_t kv_head, HeadAttentionResult &r) const;

    /**
     * Query-group form: evaluate num_queries queries that share one KV
     * head's cache (the GQA group, or any batch of queries pinned to
     * this KV head) in ONE pass over the cache. Query g's headDim
     * vector is queries + g * query_stride; its result lands in rs[g].
     * The sparse region's packed sign rows and survivor key tiles
     * stream through every query's concordance test and top-k heap
     * together (batchScoreSelectMulti), so the cache is read once for
     * the whole group instead of once per query — per query, results
     * are bit-identical to computeHeadInto.
     */
    void computeGroupInto(const float *queries, size_t query_stride,
                          uint32_t num_queries, const KvCache &cache,
                          uint32_t kv_head, HeadAttentionResult *rs) const;

    /** Fold a result's counts into running filter statistics. */
    static void recordStats(const HeadAttentionResult &r, FilterStats &fs);

    /**
     * Token ranges of the dense part for a context of length n:
     * [0, sinks) and [win_start, n). The sparse region is
     * [sinks, win_start); empty when the context fits densely.
     */
    void densePartition(size_t n, size_t &sinks, size_t &win_start) const;

  private:
    LongSightConfig cfg_;
    uint32_t numKvHeads_;
    std::vector<int> thresholds_;
};

} // namespace longsight

#endif // LONGSIGHT_CORE_HYBRID_ATTENTION_HH

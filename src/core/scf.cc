#include "core/scf.hh"

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace longsight {

bool
scfPasses(const SignBits &query, const SignBits &key, int threshold)
{
    return query.concordance(key) >= threshold;
}

std::vector<uint32_t>
scfFilter(const SignBits &query, const std::vector<SignBits> &keys,
          int threshold, uint32_t base_index)
{
    std::vector<uint32_t> survivors;
    for (uint32_t i = 0; i < keys.size(); ++i) {
        if (scfPasses(query, keys[i], threshold))
            survivors.push_back(base_index + i);
    }
    return survivors;
}

std::vector<uint32_t>
scfFilter(const SignBits &query, const SignMatrix &keys, int threshold,
          uint32_t base_index)
{
    std::vector<uint32_t> survivors;
    if (keys.rows() == 0)
        return survivors;
    batchConcordanceScan(query, keys, 0, keys.rows(), threshold,
                         survivors);
    if (base_index != 0) {
        for (uint32_t &idx : survivors)
            idx += base_index;
    }
    return survivors;
}

std::vector<uint32_t>
scfFilterRows(const float *query, const Matrix &keys, size_t begin,
              size_t end, int threshold)
{
    LS_ASSERT(end <= keys.rows() && begin <= end,
              "scfFilterRows range [", begin, ",", end, ") out of ",
              keys.rows());
    const SignBits q(query, keys.cols());
    std::vector<uint32_t> survivors;
    for (size_t i = begin; i < end; ++i) {
        const SignBits k(keys.row(i), keys.cols());
        if (scfPasses(q, k, threshold))
            survivors.push_back(static_cast<uint32_t>(i));
    }
    return survivors;
}

} // namespace longsight

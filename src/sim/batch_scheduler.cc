#include "sim/batch_scheduler.hh"

#include <algorithm>
#include <deque>

#include "util/logging.hh"

namespace longsight {

namespace {

struct ActiveJob
{
    ServingJob job;
    uint64_t context = 0;   //!< prompt + generated so far
    uint32_t generated = 0;
    Tick firstTokenAt = 0;
    Tick lastTokenAt = 0;
};

} // namespace

ScheduleResult
runBatchSchedule(std::vector<ServingJob> jobs, const EngineModel &engine)
{
    LS_ASSERT(engine.maxBatch > 0, "engine must admit at least one job");
    LS_ASSERT(engine.prefillTime && engine.stepTime,
              "engine callbacks must be set");
    std::sort(jobs.begin(), jobs.end(),
              [](const ServingJob &a, const ServingJob &b) {
                  return a.arrival < b.arrival ||
                      (a.arrival == b.arrival && a.id < b.id);
              });

    ScheduleResult result;
    std::deque<ServingJob> waiting;
    std::vector<ActiveJob> active;
    size_t next_arrival = 0;
    Tick now = 0;

    auto admit_arrivals = [&](Tick t) {
        while (next_arrival < jobs.size() &&
               jobs[next_arrival].arrival <= t)
            waiting.push_back(jobs[next_arrival++]);
    };

    // Retire finished jobs (stable order for determinism). Runs after
    // every decode iteration AND immediately after an admission, so a
    // job admitted with a zero output budget retires on the spot
    // instead of being carried through a decode iteration it never
    // asked for.
    auto retire_finished = [&] {
        for (auto it = active.begin(); it != active.end();) {
            if (it->generated >= it->job.outputTokens) {
                JobMetrics m;
                m.id = it->job.id;
                // A zero-output job never produced a first token.
                m.ttft = it->generated
                    ? it->firstTokenAt - it->job.arrival
                    : 0;
                m.completion = now;
                m.tokens = it->generated;
                result.jobs.push_back(m);
                if (engine.onRetire)
                    engine.onRetire(it->job.id);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    };

    while (next_arrival < jobs.size() || !waiting.empty() ||
           !active.empty()) {
        admit_arrivals(now);

        // Idle engine: jump to the next arrival.
        if (waiting.empty() && active.empty()) {
            LS_ASSERT(next_arrival < jobs.size(), "scheduler stuck");
            now = std::max(now, jobs[next_arrival].arrival);
            admit_arrivals(now);
            continue;
        }

        // Admission first: prefill one waiting job into a free slot.
        // The engine's admission gate may hold the queue (e.g. not
        // enough free KV blocks for prompt + output); it is bypassed
        // when the batch is empty, where holding would livelock.
        if (!waiting.empty() && active.size() < engine.maxBatch &&
            (active.empty() || !engine.canAdmit ||
             engine.canAdmit(waiting.front()))) {
            ServingJob job = waiting.front();
            waiting.pop_front();
            now += engine.prefillTime(job.promptLen);
            if (engine.onAdmit)
                engine.onAdmit(job);
            ActiveJob aj;
            aj.job = job;
            aj.context = job.promptLen;
            aj.lastTokenAt = now;
            active.push_back(aj);
            retire_finished();
            continue;
        }

        // Decode iteration over the whole active batch.
        std::vector<uint64_t> contexts;
        contexts.reserve(active.size());
        for (const auto &aj : active)
            contexts.push_back(aj.context);
        const Tick step = engine.stepTime(contexts);
        now += step;

        for (auto &aj : active) {
            ++aj.context;
            ++aj.generated;
            if (aj.generated == 1) {
                aj.firstTokenAt = now;
                result.ttftMs.add(toSeconds(now - aj.job.arrival) * 1e3);
            } else {
                result.tbtMs.add(toSeconds(now - aj.lastTokenAt) * 1e3);
            }
            aj.lastTokenAt = now;
            ++result.totalTokens;
        }

        retire_finished();
    }

    result.makespan = now;
    if (now > 0)
        result.throughputTokensPerSec =
            static_cast<double>(result.totalTokens) / toSeconds(now);
    return result;
}

} // namespace longsight

#include "sim/baseline_gpu.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

BaselineGpuSystem::BaselineGpuSystem(const GpuConfig &gpu,
                                     const ModelConfig &model,
                                     uint32_t num_gpus)
    : gpu_(gpu, model), numGpus_(num_gpus)
{
    LS_ASSERT(num_gpus >= 1, "need at least one GPU");
}

uint32_t
BaselineGpuSystem::maxUsers(uint64_t context_len) const
{
    return gpu_.maxUsersDense(context_len) * numGpus_;
}

ServingResult
BaselineGpuSystem::decode(uint64_t context_len, uint32_t users) const
{
    ServingResult r;
    r.users = users;
    if (users == 0 || users > maxUsers(context_len)) {
        r.limitedBy = "GPU HBM capacity";
        return r;
    }
    r.feasible = true;

    // Data parallelism: each GPU serves ceil(users / numGpus) users;
    // the step time is the slowest (fullest) GPU.
    const uint32_t per_gpu = (users + numGpus_ - 1) / numGpus_;
    const Tick non_attn = gpu_.decodeNonAttentionTime(per_gpu);
    const Tick attn = gpu_.denseAttentionTime(context_len, per_gpu);
    r.stepTime = non_attn + attn;
    r.breakdown.gpuNonAttention = non_attn;
    r.breakdown.gpuWindowExposed = attn;
    r.finalize();
    return r;
}

SlidingWindowSystem::SlidingWindowSystem(const GpuConfig &gpu,
                                         const ModelConfig &model,
                                         uint32_t window, uint32_t sinks)
    : gpu_(gpu, model), window_(window), sinks_(sinks)
{
}

uint32_t
SlidingWindowSystem::maxUsers() const
{
    return gpu_.maxUsersWindowed(window_ + sinks_);
}

ServingResult
SlidingWindowSystem::decode(uint64_t context_len, uint32_t users) const
{
    ServingResult r;
    r.users = users;
    if (users == 0 || users > maxUsers()) {
        r.limitedBy = "GPU HBM capacity";
        return r;
    }
    r.feasible = true;
    const uint64_t attended =
        std::min<uint64_t>(context_len, window_ + sinks_);
    const Tick non_attn = gpu_.decodeNonAttentionTime(users);
    const Tick attn = gpu_.denseAttentionTime(attended, users);
    r.stepTime = non_attn + attn;
    r.breakdown.gpuNonAttention = non_attn;
    r.breakdown.gpuWindowExposed = attn;
    r.finalize();
    return r;
}

} // namespace longsight

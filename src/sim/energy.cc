#include "sim/energy.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

namespace {
constexpr double kPicoToJoule = 1e-12;
}

EnergyModel::EnergyModel(const EnergyConstants &constants,
                         const ModelConfig &model)
    : constants_(constants), model_(model)
{
}

double
EnergyModel::nonAttentionJ() const
{
    // Weight streaming (dominant) plus the matching FLOPs.
    const double weight_bits =
        static_cast<double>(model_.weightBytes()) * 8.0;
    const double flops =
        static_cast<double>(model_.decodeFlopsPerTokenNoAttn());
    return (weight_bits * constants_.hbmPjPerBit +
            flops * constants_.gpuPjPerFlop) *
        kPicoToJoule;
}

TokenEnergy
EnergyModel::denseGpuToken(uint64_t context_len) const
{
    TokenEnergy e;
    const double kv_bits = static_cast<double>(model_.kvBytesPerToken()) *
        static_cast<double>(context_len) * 8.0;
    const double attn_flops =
        static_cast<double>(model_.attentionFlopsPerToken(context_len));
    e.gpuJ = nonAttentionJ() +
        (kv_bits * constants_.hbmPjPerBit +
         attn_flops * constants_.gpuPjPerFlop) *
            kPicoToJoule;
    return e;
}

TokenEnergy
EnergyModel::longSightToken(uint64_t context_len,
                            const EnergyHybridConfig &cfg) const
{
    TokenEnergy e;
    const uint64_t dense_tokens = std::min<uint64_t>(
        context_len, cfg.windowSize + cfg.sinkTokens);
    const uint64_t region = context_len - dense_tokens;

    // GPU: non-attention work + dense window attention + combine.
    const double window_bits =
        static_cast<double>(model_.kvBytesPerToken()) *
        static_cast<double>(dense_tokens) * 8.0;
    const double window_flops = static_cast<double>(
        model_.attentionFlopsPerToken(dense_tokens));
    e.gpuJ = nonAttentionJ() +
        (window_bits * constants_.hbmPjPerBit +
         window_flops * constants_.gpuPjPerFlop) *
            kPicoToJoule;

    if (region == 0)
        return e;

    // Per (layer, KV head) offload traffic.
    const double heads =
        static_cast<double>(model_.numLayers) * model_.numKvHeads;
    const double d = model_.headDim;
    const double group = model_.groupSize();
    const double k =
        std::min<double>(cfg.topK, static_cast<double>(region));
    const double survivors = std::max(
        2.0 * static_cast<double>(region) / cfg.filterRatio - k, k);

    // DReX: sign-bit reads + PFU compares over the whole region,
    // full-precision key fetches for survivors, value reads for the
    // top-k, and NMA dot products.
    const double sign_bits = static_cast<double>(region) * d;
    const double key_bits = survivors * d * 16.0;
    const double value_bits = k * d * 16.0;
    const double nma_flops = survivors * 2.0 * d * group;
    e.drexJ = heads *
        (sign_bits * (constants_.lpddrPjPerBit + constants_.pfuPjPerBit) +
         (key_bits + value_bits) * constants_.lpddrPjPerBit +
         nma_flops * constants_.nmaPjPerFlop) *
        kPicoToJoule;

    // CXL: request descriptors (queries for all query heads, once per
    // layer) and response payloads (scores + values per KV head).
    const double desc_bits = static_cast<double>(model_.numLayers) *
        (256.0 + model_.numQueryHeads * d * 2.0) * 8.0;
    const double resp_bits =
        heads * (k * d * 16.0 + k * group * 32.0);
    e.cxlJ = (desc_bits + resp_bits) * constants_.cxlPjPerBit *
        kPicoToJoule;
    return e;
}

} // namespace longsight

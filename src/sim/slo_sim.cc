#include "sim/slo_sim.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/serving.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace longsight {

namespace {

/**
 * Mutable session state shared by the event callbacks.
 */
struct Session
{
    const SloConfig &cfg;
    const std::function<Tick(uint32_t)> &stepTime;
    EventQueue queue;
    SloResult result;
    uint32_t active = 0;
    uint64_t withinSlo = 0;
    uint64_t totalTokens = 0;

    explicit Session(const SloConfig &c,
                     const std::function<Tick(uint32_t)> &st)
        : cfg(c), stepTime(st)
    {
    }

    void decodeToken(uint32_t remaining)
    {
        const Tick latency = stepTime(active);
        const double ms = toSeconds(latency) * 1e3;
        result.tokenLatencyMs.add(ms);
        result.latencyHist.add(ms);
        if (ms <= cfg.sloMs)
            ++withinSlo;
        ++totalTokens;
        if (remaining > 1) {
            queue.scheduleAfter(latency, [this, remaining] {
                decodeToken(remaining - 1);
            });
        } else {
            queue.scheduleAfter(latency, [this] {
                LS_ASSERT(active > 0, "user departure underflow");
                --active;
            });
        }
    }

    void admitUser()
    {
        ++active;
        result.peakConcurrency = std::max(result.peakConcurrency, active);
        decodeToken(cfg.tokensPerUser);
    }
};

} // namespace

SloResult
runSloSimulation(const SloConfig &cfg,
                 const std::function<Tick(uint32_t)> &step_time)
{
    LS_ASSERT(cfg.users > 0 && cfg.tokensPerUser > 0,
              "degenerate SLO simulation");
    Session s(cfg, step_time);
    // Size the histogram from the objective under study (never
    // narrower than the historical [0, 200) ms range): a tail beyond
    // the range saturated the top edge silently before, making p99
    // untrustworthy exactly when it mattered. Residual overflow is
    // reported alongside (tailOverflowFraction).
    s.result.latencyHist = sloHistogram(
        std::max(cfg.sloMs, 200.0 / kSloHistogramSpan), 100);
    Rng rng(cfg.seed);

    // Exponential interarrivals, all scheduled up front.
    Tick arrival = 0;
    for (uint32_t u = 0; u < cfg.users; ++u) {
        s.queue.scheduleAt(arrival, [&s] { s.admitUser(); });
        const double gap = -std::log(1.0 - rng.uniform());
        arrival += static_cast<Tick>(
            gap * static_cast<double>(cfg.meanInterarrival));
    }

    s.result.makespan = s.queue.run();
    s.result.sloAttainment = s.totalTokens
        ? static_cast<double>(s.withinSlo) /
            static_cast<double>(s.totalTokens)
        : 0.0;
    s.result.tailOverflowFraction = s.result.latencyHist.count()
        ? static_cast<double>(s.result.latencyHist.overflow()) /
            static_cast<double>(s.result.latencyHist.count())
        : 0.0;
    return s.result;
}

} // namespace longsight

/**
 * @file
 * Common result types for the decode-phase serving simulators: a
 * steady-state decode step is simulated (or analytically composed)
 * per configuration and scaled to throughput (tokens/s across all
 * users) and per-token latency — the quantities of Figure 7 — plus
 * the component breakdowns of Figures 8 and 9.
 */

#ifndef LONGSIGHT_SIM_SERVING_HH
#define LONGSIGHT_SIM_SERVING_HH

#include <cstdint>
#include <string>

#include "util/stats.hh"
#include "util/units.hh"

namespace longsight {

/**
 * Latency objectives an operator provisions against (§4 "SLO
 * requirements"): time-to-first-token for responsiveness, time-
 * between-tokens for streaming fluency. Goodput counts only the
 * tokens of requests that met both.
 */
struct SloTargets
{
    double ttftMs = 2000.0; //!< arrival -> first generated token
    double tbtMs = 100.0;   //!< per-token streaming gap
};

/**
 * A latency histogram sized from its SLO target: the range spans
 * kSloHistogramSpan x the objective, so the region an operator cares
 * about (did the tail cross the target, and by how much?) is covered
 * with real bins instead of saturating at an arbitrary fixed edge.
 * Samples beyond the span still land in the histogram's overflow
 * counter — report overflow()/count() alongside any quantile so a
 * truncated tail is visible, never silent.
 */
constexpr double kSloHistogramSpan = 5.0;

Histogram sloHistogram(double slo_ms, size_t bins = 200);

/**
 * Per-token latency breakdown of a LongSight decode step (Fig. 9).
 * Components are non-overlapped contributions: exactly one of
 * gpuWindowExposed / drexExposed is nonzero per layer depending on
 * which side is the attention-phase critical path.
 */
struct StepBreakdown
{
    Tick gpuNonAttention = 0; //!< QKV, projections, FFN, LM head
    Tick itq = 0;             //!< runtime ITQ rotations
    Tick gpuWindowExposed = 0; //!< window attention beyond the offload
    Tick drexExposed = 0;      //!< offload time beyond window attention
    Tick submit = 0;           //!< descriptor MMIO writes
    Tick poll = 0;             //!< completion-polling overhead
    Tick softmax = 0;          //!< combined softmax + hybrid SV

    Tick total() const
    {
        return gpuNonAttention + itq + gpuWindowExposed + drexExposed +
            submit + poll + softmax;
    }
};

/**
 * Scan-amortization accounting for a batched decode step: how many
 * KV-cache passes the grouped (per-KV-head) dispatch actually ran
 * versus how many the ungrouped per-query-head dispatch would have
 * run over the same work. Under the paper's GQA Table-1 shapes the
 * ratio is the group size (e.g. 4 for 32 query heads / 8 KV heads);
 * batching concurrent requests keeps the ratio while multiplying the
 * work items that enjoy it.
 */
struct GroupedScanStats
{
    uint64_t requests = 0;     //!< pipelines stepped in the batch
    uint64_t groupedItems = 0; //!< (layer, KV head, request) work items
    uint64_t scanPasses = 0;   //!< grouped cache scans actually run
    uint64_t ungroupedEquivalent = 0; //!< per-query-head scans replaced

    /** Accumulate another batch step's counters. */
    void merge(const GroupedScanStats &o);

    /** ungroupedEquivalent / scanPasses (1.0 when nothing scanned). */
    double amortization() const;
};

/**
 * Outcome of one serving configuration (model, context, users).
 */
struct ServingResult
{
    bool feasible = false;      //!< memory capacity / queue constraints
    std::string limitedBy;      //!< reason when infeasible
    uint32_t users = 0;
    Tick stepTime = 0;          //!< one decode step (= per-token latency)
    double tokensPerSecond = 0; //!< across all users
    double perTokenLatencyUs = 0;
    StepBreakdown breakdown;    //!< LongSight only; zero elsewhere

    /** Fill throughput/latency from stepTime and users. */
    void finalize();
};

} // namespace longsight

#endif // LONGSIGHT_SIM_SERVING_HH

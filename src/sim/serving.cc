#include "sim/serving.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

Histogram
sloHistogram(double slo_ms, size_t bins)
{
    LS_ASSERT(slo_ms > 0.0 && bins > 0, "degenerate SLO histogram");
    return Histogram(0.0, kSloHistogramSpan * slo_ms, bins);
}

void
GroupedScanStats::merge(const GroupedScanStats &o)
{
    requests += o.requests;
    groupedItems += o.groupedItems;
    scanPasses += o.scanPasses;
    ungroupedEquivalent += o.ungroupedEquivalent;
}

double
GroupedScanStats::amortization() const
{
    if (scanPasses == 0)
        return 1.0;
    return static_cast<double>(ungroupedEquivalent) /
        static_cast<double>(scanPasses);
}

void
ServingResult::finalize()
{
    if (!feasible || stepTime == 0 || users == 0) {
        tokensPerSecond = 0.0;
        perTokenLatencyUs = 0.0;
        return;
    }
    const double step_s = toSeconds(stepTime);
    tokensPerSecond = static_cast<double>(users) / step_s;
    perTokenLatencyUs = toMicroseconds(stepTime);
}

} // namespace longsight

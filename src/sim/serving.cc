#include "sim/serving.hh"

namespace longsight {

void
ServingResult::finalize()
{
    if (!feasible || stepTime == 0 || users == 0) {
        tokensPerSecond = 0.0;
        perTokenLatencyUs = 0.0;
        return;
    }
    const double step_s = toSeconds(stepTime);
    tokensPerSecond = static_cast<double>(users) / step_s;
    perTokenLatencyUs = toMicroseconds(stepTime);
}

} // namespace longsight

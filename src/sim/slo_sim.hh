/**
 * @file
 * Event-driven SLO study: users arrive over time, each decoding a
 * stream of tokens on a shared LongSight (or baseline) system. The
 * per-token service time reflects the number of users concurrently
 * active, so ramp-up and drain phases produce a latency *distribution*
 * rather than the steady-state point Figs. 7/9 report — the §4
 * "latency sensitivity" angle: attention requests sit on the critical
 * path of generation, so tail latency is what an operator provisions
 * for.
 */

#ifndef LONGSIGHT_SIM_SLO_SIM_HH
#define LONGSIGHT_SIM_SLO_SIM_HH

#include <cstdint>
#include <functional>

#include "sim/event_queue.hh"
#include "util/stats.hh"

namespace longsight {

/**
 * Arrival/workload shape of the SLO study.
 */
struct SloConfig
{
    uint32_t users = 16;             //!< total users to admit
    Tick meanInterarrival = 50 * kMillisecond;
    uint32_t tokensPerUser = 64;     //!< decode steps per user
    double sloMs = 50.0;             //!< per-token latency objective
    uint64_t seed = 1;
};

/**
 * Result of one simulated serving session.
 */
struct SloResult
{
    RunningStat tokenLatencyMs;  //!< per-token latency samples
    /**
     * Latency distribution, sized from the configured SLO by
     * runSloSimulation (sloHistogram: the range spans a multiple of
     * cfg.sloMs, never less than the historical [0, 200) ms). The
     * member initializer only covers a default-constructed result.
     */
    Histogram latencyHist{0.0, 200.0, 100};
    /**
     * Fraction of samples beyond the histogram range. Quantiles rank
     * such samples at the top edge, so any nonzero value here means
     * latencyHist's p99 is a *lower bound* — report them together.
     */
    double tailOverflowFraction = 0.0;
    double sloAttainment = 0.0;  //!< fraction of tokens within SLO
    uint32_t peakConcurrency = 0;
    Tick makespan = 0;
};

/**
 * Run the event-driven session.
 *
 * @param cfg arrivals and per-user token counts
 * @param step_time maps the *current* number of active users to the
 *        per-token step latency (Tick); wraps a serving system
 */
SloResult runSloSimulation(const SloConfig &cfg,
                           const std::function<Tick(uint32_t)> &step_time);

} // namespace longsight

#endif // LONGSIGHT_SIM_SLO_SIM_HH

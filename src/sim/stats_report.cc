#include "sim/stats_report.hh"

#include "core/filter_stats.hh"
#include "cxl/link.hh"
#include "dram/package.hh"
#include "drex/drex_device.hh"

namespace longsight {

StatsReport::StatsReport(const std::string &title) : table_(title)
{
    table_.setHeader({"Component", "Stat", "Value"});
}

void
StatsReport::addChannel(const std::string &name, const DramChannel &ch)
{
    const ChannelStats &s = ch.stats();
    table_.addRow({name, "reads", std::to_string(s.reads)});
    table_.addRow({name, "writes", std::to_string(s.writes)});
    table_.addRow({name, "row hit rate",
                   TextTable::num(100.0 * s.rowHitRate(), 1) + "%"});
    table_.addRow({name, "bytes", std::to_string(s.bytesTransferred)});
    table_.addRow({name, "refreshes", std::to_string(s.refreshes)});
}

void
StatsReport::addPackage(const std::string &name, const DramPackage &pkg)
{
    uint64_t reads = 0, writes = 0, bytes = 0, hits = 0, total = 0;
    for (uint32_t c = 0; c < pkg.numChannels(); ++c) {
        const ChannelStats &s = pkg.channel(c).stats();
        reads += s.reads;
        writes += s.writes;
        bytes += s.bytesTransferred;
        hits += s.rowHits;
        total += s.rowHits + s.rowMisses;
    }
    table_.addRow({name, "reads", std::to_string(reads)});
    table_.addRow({name, "writes", std::to_string(writes)});
    table_.addRow({name, "bytes", std::to_string(bytes)});
    table_.addRow({name, "row hit rate",
                   total ? TextTable::num(100.0 * hits / total, 1) + "%"
                         : "-"});
}

void
StatsReport::addDevice(const std::string &name, DrexDevice &dev)
{
    for (uint32_t p = 0; p < dev.config().geometry.numPackages; ++p) {
        if (dev.package(p).totalBytesTransferred() == 0)
            continue; // idle packages add noise, not information
        addPackage(name + ".pkg" + std::to_string(p), dev.package(p));
    }
    table_.addRow({name, "active users",
                   std::to_string(dev.dcc().activeUsers())});
    table_.addRow({name, "completions pending",
                   std::to_string(dev.dcc().pollingRegister().popcount())});
}

void
StatsReport::addLink(const std::string &name, const CxlLink &link)
{
    table_.addRow({name, "bytes", std::to_string(link.bytesTransferred())});
}

void
StatsReport::addFilterStats(const std::string &name, const FilterStats &fs)
{
    table_.addRow({name, "evaluations", std::to_string(fs.evaluations)});
    table_.addRow({name, "raw keys", std::to_string(fs.rawKeys)});
    table_.addRow({name, "survivors", std::to_string(fs.survivorKeys)});
    table_.addRow({name, "selected", std::to_string(fs.selectedKeys)});
    table_.addRow({name, "filter ratio",
                   TextTable::num(fs.filterRatio(), 2) + "x"});
}

void
StatsReport::addScalar(const std::string &name, const std::string &value,
                       const std::string &note)
{
    table_.addRow({name, note.empty() ? "value" : note, value});
}

} // namespace longsight

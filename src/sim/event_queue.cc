#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace longsight {

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    LS_ASSERT(when >= now_, "scheduling into the past: ", when, " < ", now_);
    events_.emplace(std::make_pair(when, seq_++), std::move(cb));
}

void
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    scheduleAt(now_ + delay, std::move(cb));
}

size_t
EventQueue::pending() const
{
    return events_.size();
}

Tick
EventQueue::run(uint64_t max_events)
{
    uint64_t fired = 0;
    while (!events_.empty()) {
        LS_ASSERT(fired < max_events,
                  "event cap exceeded — runaway rescheduling?");
        auto it = events_.begin();
        now_ = it->first.first;
        Callback cb = std::move(it->second);
        events_.erase(it);
        cb();
        ++fired;
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick until)
{
    while (!events_.empty() && events_.begin()->first.first <= until) {
        auto it = events_.begin();
        now_ = it->first.first;
        Callback cb = std::move(it->second);
        events_.erase(it);
        cb();
    }
    if (now_ < until)
        now_ = until;
    return now_;
}

} // namespace longsight

/**
 * @file
 * End-to-end LongSight serving model (§6, Fig. 2b): one GPU plus one
 * DReX device over CXL. Each decode step runs, per layer:
 *
 *   1. the GPU writes one request descriptor per user (MMIO over CXL)
 *      carrying the layer's query vectors;
 *   2. DReX executes the per-head offloads — all 8 KV heads in
 *      parallel on the 8 package NMAs, users serialized per NMA —
 *      while the GPU computes dense window (+sink) attention;
 *   3. value payloads stream back over CXL (overlapped with NMA
 *      compute for later users);
 *   4. the GPU polls completion, then performs the combined softmax
 *      and hybrid SV accumulation.
 *
 * The per-offload latency is obtained from the detailed NMA + DRAM
 * model once per configuration (offloads of a steady-state decode
 * step are statistically identical), then composed across users,
 * heads, and layers — mirroring how the paper's own framework couples
 * DRAMSim3-level detail with real-system GPU numbers.
 */

#ifndef LONGSIGHT_SIM_LONGSIGHT_SYSTEM_HH
#define LONGSIGHT_SIM_LONGSIGHT_SYSTEM_HH

#include <cstdint>

#include "cxl/link.hh"
#include "drex/drex_device.hh"
#include "gpu/gpu_model.hh"
#include "model/model_config.hh"
#include "sim/serving.hh"

namespace longsight {

/**
 * Full-system configuration for LongSight serving.
 */
struct LongSightSystemConfig
{
    GpuConfig gpu;
    CxlConfig cxl;
    DrexGeometry geometry;
    LpddrTimings timings;
    NmaConfig nma;
    DccConfig dcc;

    uint32_t windowSize = 1024; //!< dense sliding window W (§8.1.3)
    uint32_t sinkTokens = 16;   //!< attention sinks (§8.1.3)
    uint32_t topK = 1024;       //!< k (§8.1.3)
    uint32_t stagingTokens = 128; //!< GPU-side bulk-update buffer (§6)

    /**
     * Average Fig-3 filter ratio used by the timing-only survivor
     * model (§8.2 fixes thresholds giving a 20x average).
     */
    double filterRatio = 20.0;

    /**
     * Number of DReX expanders attached to the GPU (each with its own
     * CXL link). The paper evaluates one; scaling out multiplies KV
     * capacity and NMA/link throughput while the GPU stays shared.
     */
    uint32_t numDrexDevices = 1;
};

/**
 * Detailed single-offload observation plus its CXL cost (Fig. 8).
 */
struct OffloadObservation
{
    OffloadResult result;
    Tick cxlValueTime = 0; //!< response payload transfer, one user
    Tick submitTime = 0;   //!< descriptor write, one user
};

/**
 * The GPU + DReX serving system.
 */
class LongSightSystem
{
  public:
    LongSightSystem(const LongSightSystemConfig &cfg,
                    const ModelConfig &model);

    const LongSightSystemConfig &config() const { return cfg_; }
    const ModelConfig &model() const { return model_; }

    /** Steady-state decode step for `users` at `context_len`. */
    ServingResult decode(uint64_t context_len, uint32_t users) const;

    /**
     * Users supported simultaneously: bounded by DReX capacity (with
     * sign-bit overhead), the DCC queue depth, and the GPU window
     * footprint.
     */
    uint32_t maxUsers(uint64_t context_len) const;

    /**
     * Run one (user, layer, head) offload through the detailed NMA +
     * DRAM + CXL models (timing-only survivor statistics).
     */
    OffloadObservation observeOffload(uint64_t context_len) const;

    /** Sparse-region token count at a context length. */
    uint64_t sparseTokens(uint64_t context_len) const;

    /**
     * Time to first token for one user: GPU prefill plus the first
     * decode step. DReX population (Key/Key-Sign/Value Object writes)
     * runs in separate kernels off the prefill critical path (§6), so
     * only the portion that cannot overlap the prefill tail is
     * exposed.
     */
    Tick timeToFirstToken(uint64_t prompt_len) const;

    /** Survivor fraction implied by the configured filter ratio. */
    double survivorFraction(uint64_t region_tokens) const;

    /** Request descriptor payload: header + all query vectors. */
    uint64_t descriptorBytes() const;

  private:
    LongSightSystemConfig cfg_;
    ModelConfig model_;
    GpuModel gpuModel_;
};

} // namespace longsight

#endif // LONGSIGHT_SIM_LONGSIGHT_SYSTEM_HH

/**
 * @file
 * Continuous-batching serving scheduler over an abstract decode
 * engine. Jobs (prompt length, output budget) arrive over time; the
 * engine alternates prefill work for newly admitted jobs with decode
 * iterations over the active batch, jobs leaving as they finish —
 * the dynamic the paper's batched-inference discussion (§2.1, §3)
 * assumes around the attention kernel. The engine is provided as two
 * callbacks so the same scheduler drives LongSight, dense-GPU, or any
 * other system model, and the scheduler itself stays deterministic
 * and unit-testable.
 */

#ifndef LONGSIGHT_SIM_BATCH_SCHEDULER_HH
#define LONGSIGHT_SIM_BATCH_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "util/stats.hh"
#include "util/units.hh"

namespace longsight {

/**
 * One serving request.
 */
struct ServingJob
{
    uint32_t id = 0;
    Tick arrival = 0;
    uint64_t promptLen = 0;
    uint32_t outputTokens = 1;
};

/**
 * Completion record for one job.
 */
struct JobMetrics
{
    uint32_t id = 0;
    Tick ttft = 0;       //!< arrival -> first generated token
    Tick completion = 0; //!< absolute finish time
    uint32_t tokens = 0; //!< generated tokens (== outputTokens)
};

/**
 * The decode engine the scheduler drives.
 */
struct EngineModel
{
    /** Prefill cost of admitting a prompt of the given length. */
    std::function<Tick(uint64_t prompt_len)> prefillTime;

    /**
     * One decode iteration over the active batch; receives each
     * active job's current context length.
     */
    std::function<Tick(const std::vector<uint64_t> &contexts)> stepTime;

    /** Max jobs resident at once (KV capacity / queue depth). */
    uint32_t maxBatch = 8;

    /**
     * Optional residency hooks. A functional engine (e.g. one real
     * DecodePipeline per resident job, stepped together through the
     * grouped batch-decode path) uses them to mirror the scheduler's
     * admit/retire decisions: onAdmit fires after the job's prefill is
     * charged, just before it joins the batch; onRetire fires when the
     * job leaves (drain), so the slot can be refilled by the next
     * admission. Both may be null.
     */
    std::function<void(const ServingJob &job)> onAdmit;
    std::function<void(uint32_t job_id)> onRetire;

    /**
     * Optional admission gate: consulted with the head-of-line waiting
     * job before its prefill is charged. Returning false holds the
     * queue (FIFO: later jobs do not jump ahead) and the engine runs a
     * decode iteration instead, re-evaluating after the batch drains
     * work. A paged-KV engine uses this to admit against its *block
     * budget* — prompt + output must fit the free pool — instead of a
     * fixed request count. Ignored while the batch is empty (the job
     * must be admitted eventually or the scheduler would livelock; an
     * engine whose budget cannot fit a lone job is misconfigured, and
     * the paged append will assert on pool exhaustion). May be null.
     */
    std::function<bool(const ServingJob &job)> canAdmit;
};

/**
 * Aggregate outcome of a schedule.
 */
struct ScheduleResult
{
    std::vector<JobMetrics> jobs; //!< completion order
    Tick makespan = 0;
    uint64_t totalTokens = 0;
    double throughputTokensPerSec = 0.0;
    RunningStat ttftMs;
    RunningStat tbtMs; //!< time-between-tokens samples
};

/**
 * Run jobs to completion under continuous batching.
 *
 * Policy: at each scheduling point, admit the longest-waiting arrived
 * job if a batch slot is free (paying its prefill); otherwise run one
 * decode iteration over the active batch. Deterministic given inputs.
 */
ScheduleResult runBatchSchedule(std::vector<ServingJob> jobs,
                                const EngineModel &engine);

} // namespace longsight

#endif // LONGSIGHT_SIM_BATCH_SCHEDULER_HH

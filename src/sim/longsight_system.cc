#include "sim/longsight_system.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace longsight {

LongSightSystem::LongSightSystem(const LongSightSystemConfig &cfg,
                                 const ModelConfig &model)
    : cfg_(cfg), model_(model), gpuModel_(cfg.gpu, model)
{
    LS_ASSERT(cfg.filterRatio >= 1.0, "filter ratio must be >= 1");
}

uint64_t
LongSightSystem::sparseTokens(uint64_t context_len) const
{
    const uint64_t dense = cfg_.windowSize + cfg_.sinkTokens;
    return context_len > dense ? context_len - dense : 0;
}

double
LongSightSystem::survivorFraction(uint64_t region_tokens) const
{
    if (region_tokens == 0)
        return 0.0;
    // Fig-3 metric: ratio = 2*raw / (survivors + selected), so the
    // survivor count consistent with the configured average ratio is
    // 2*raw/ratio - k (floored at k: at least the selected keys were
    // scored).
    const double raw = static_cast<double>(region_tokens);
    const double k = std::min<double>(cfg_.topK, raw);
    const double survivors =
        std::max(2.0 * raw / cfg_.filterRatio - k, k);
    return std::min(survivors / raw, 1.0);
}

uint64_t
LongSightSystem::descriptorBytes() const
{
    // UID + layer + control, plus one query vector per query head.
    return cfg_.cxl.descriptorBytes +
        static_cast<uint64_t>(model_.numQueryHeads) * model_.headDim *
            model_.bytesPerValue;
}

OffloadObservation
LongSightSystem::observeOffload(uint64_t context_len) const
{
    const uint64_t region = sparseTokens(context_len);
    LS_ASSERT(region > 0, "no sparse region at context ", context_len);

    // A fresh timing-only device: steady-state offloads are
    // statistically identical, so one detailed simulation per
    // configuration suffices (see file header).
    DrexConfig dc;
    dc.geometry = cfg_.geometry;
    dc.timings = cfg_.timings;
    dc.nma = cfg_.nma;
    dc.dcc = cfg_.dcc;
    dc.numKvHeads = model_.numKvHeads;
    dc.numLayers = model_.numLayers;
    dc.headDim = model_.headDim;
    DrexDevice device(dc);

    OffloadSpec spec;
    spec.user = 0;
    spec.layer = 0;
    spec.kvHead = 0;
    spec.sparseBegin = cfg_.sinkTokens;
    spec.sparseEnd = cfg_.sinkTokens + region;
    spec.numQueries = model_.groupSize();
    spec.k = cfg_.topK;
    spec.survivorFraction = survivorFraction(region);

    OffloadObservation obs;
    obs.result = device.nma(0).process(0, spec);

    CxlLink link(cfg_.cxl);
    obs.submitTime =
        link.mmioWrite(0, static_cast<uint32_t>(descriptorBytes())) - 0;
    obs.cxlValueTime = link.bulkRead(obs.submitTime,
                                     obs.result.valueBytes) -
        obs.submitTime;
    return obs;
}

Tick
LongSightSystem::timeToFirstToken(uint64_t prompt_len) const
{
    const Tick prefill = gpuModel_.prefillTime(prompt_len);
    // DReX population streams sparse-region KV over CXL, overlapped
    // with prefill compute; only the spill past the prefill time is
    // exposed.
    const uint64_t region = sparseTokens(prompt_len);
    Tick exposed_population = 0;
    if (region > 0) {
        DataLayout layout(cfg_.geometry, cfg_.timings, model_.numKvHeads,
                          model_.numLayers, model_.headDim);
        const Tick population = transferTime(
            layout.bytesPerToken() * region, cfg_.cxl.bandwidthGBps);
        exposed_population = population > prefill
            ? population - prefill
            : 0;
    }
    const ServingResult first_step = decode(prompt_len, 1);
    return prefill + exposed_population + first_step.stepTime;
}

uint32_t
LongSightSystem::maxUsers(uint64_t context_len) const
{
    // DReX capacity with sign overhead.
    DataLayout layout(cfg_.geometry, cfg_.timings, model_.numKvHeads,
                      model_.numLayers, model_.headDim);
    const uint64_t device_bytes =
        static_cast<uint64_t>(cfg_.geometry.totalChannels()) *
        cfg_.timings.channelCapacity;
    const uint64_t sparse = sparseTokens(context_len);
    uint64_t by_drex =
        static_cast<uint64_t>(cfg_.dcc.queueDepth) * cfg_.numDrexDevices;
    if (sparse > 0) {
        const uint64_t per_user = layout.bytesPerToken() * sparse;
        by_drex = std::min<uint64_t>(
            by_drex,
            device_bytes * cfg_.numDrexDevices / per_user);
    }

    // GPU holds sinks + window + staging buffer per user.
    const uint64_t gpu_tokens = std::min<uint64_t>(
        context_len,
        cfg_.sinkTokens + cfg_.windowSize + cfg_.stagingTokens);
    const uint32_t by_gpu = gpuModel_.maxUsersDense(gpu_tokens);

    return static_cast<uint32_t>(
        std::min<uint64_t>(by_drex, by_gpu));
}

ServingResult
LongSightSystem::decode(uint64_t context_len, uint32_t users) const
{
    ServingResult r;
    r.users = users;
    if (users == 0 || users > maxUsers(context_len)) {
        r.limitedBy = "DReX capacity / DCC queue / GPU window footprint";
        return r;
    }
    r.feasible = true;

    const uint64_t region = sparseTokens(context_len);
    const uint64_t dense_tokens =
        std::min<uint64_t>(context_len, cfg_.windowSize + cfg_.sinkTokens);

    // GPU-side per-step components.
    const Tick non_attn = gpuModel_.decodeNonAttentionTime(users);
    const Tick itq = gpuModel_.itqRotationTime(users);
    r.breakdown.gpuNonAttention = non_attn;
    r.breakdown.itq = itq;

    const Tick gpu_window =
        gpuModel_.windowAttentionTime(dense_tokens, users);

    Tick layer_attention;
    if (region == 0) {
        // Context fits in the dense part: no offload at all.
        layer_attention = gpu_window;
        r.breakdown.gpuWindowExposed = gpu_window * model_.numLayers;
    } else {
        const OffloadObservation obs = observeOffload(context_len);
        const Tick service =
            obs.result.doneTick - obs.result.startTick;

        // Users spread evenly across the attached DReX devices; each
        // device has its own CXL link and NMA pool.
        const uint32_t users_per_device =
            (users + cfg_.numDrexDevices - 1) / cfg_.numDrexDevices;

        // Descriptor writes for this device's users, serialized on
        // its link.
        const Tick submit = obs.submitTime +
            (users_per_device - 1) * transferTime(descriptorBytes(),
                                                  cfg_.cxl.bandwidthGBps);

        // Per NMA: one offload per resident user per layer (heads
        // spread across the 8 packages of the device).
        const Tick drex_busy =
            static_cast<Tick>(users_per_device) * service;

        // Value payloads share the device's link; they overlap NMA
        // compute of later users (§9.2), so the sparse path is
        // bounded by the slower of the two pipelines.
        const uint64_t resp_bytes = obs.result.valueBytes *
            model_.numKvHeads * static_cast<uint64_t>(users_per_device);
        const Tick cxl_resp =
            transferTime(resp_bytes, cfg_.cxl.bandwidthGBps) +
            cfg_.cxl.accessLatency;

        const Tick poll = 2 * cfg_.cxl.accessLatency;
        const Tick sparse_path =
            submit + std::max(drex_busy, cxl_resp) + poll;

        layer_attention = std::max(gpu_window, sparse_path);
        if (sparse_path >= gpu_window) {
            // DReX side exposed; window attention fully hidden.
            r.breakdown.submit += submit * model_.numLayers;
            r.breakdown.poll += poll * model_.numLayers;
            r.breakdown.drexExposed +=
                (sparse_path - submit - poll) * model_.numLayers;
        } else {
            r.breakdown.gpuWindowExposed += gpu_window * model_.numLayers;
        }
    }

    // Combined softmax + hybrid SV per layer.
    const uint64_t candidates = dense_tokens +
        (region > 0 ? std::min<uint64_t>(cfg_.topK, region) : 0);
    const Tick softmax = gpuModel_.softmaxCombineTime(candidates, users);
    r.breakdown.softmax = softmax * model_.numLayers;

    r.stepTime = non_attn + itq +
        model_.numLayers * (layer_attention + softmax);
    r.finalize();
    return r;
}

} // namespace longsight

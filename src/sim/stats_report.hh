/**
 * @file
 * Uniform statistics reporting across simulator components — the
 * gem5-style "stats dump" for this framework. Components keep their
 * own typed stat structs; this module renders them into one
 * TextTable so tools (the CLI, examples) can show a consistent
 * end-of-run report.
 */

#ifndef LONGSIGHT_SIM_STATS_REPORT_HH
#define LONGSIGHT_SIM_STATS_REPORT_HH

#include <string>

#include "util/table.hh"

namespace longsight {

class CxlLink;
class DramChannel;
class DramPackage;
class DrexDevice;
struct FilterStats;

/**
 * Accumulates component statistics into one named table.
 */
class StatsReport
{
  public:
    explicit StatsReport(const std::string &title);

    /** One DRAM channel's activity. */
    void addChannel(const std::string &name, const DramChannel &ch);

    /** Aggregate of a whole package. */
    void addPackage(const std::string &name, const DramPackage &pkg);

    /** All packages of a device. */
    void addDevice(const std::string &name, DrexDevice &dev);

    /** CXL link traffic. */
    void addLink(const std::string &name, const CxlLink &link);

    /** Filter-ratio statistics. */
    void addFilterStats(const std::string &name, const FilterStats &fs);

    /** Arbitrary scalar. */
    void addScalar(const std::string &name, const std::string &value,
                   const std::string &note = "");

    /** Rendered table (also printable directly). */
    const TextTable &table() const { return table_; }
    void print(std::ostream &os) const { table_.print(os); }

    size_t entries() const { return table_.rowCount(); }

  private:
    TextTable table_;
};

} // namespace longsight

#endif // LONGSIGHT_SIM_STATS_REPORT_HH

/**
 * @file
 * Functional end-to-end decode pipeline for one user (§6 execution
 * model): per-(layer, KV-head) KV caches on the "GPU" side, a staging
 * window that accumulates freshly generated KV pairs and flushes them
 * to the DReX device in 128-token object groups off the critical
 * path, and a decode step that offloads the sparse region per GQA
 * group to the device and combines the returned top-k with the local
 * dense window — verifiably equal to the all-software reference.
 *
 * This is the integration glue a real serving stack would own; here
 * it doubles as the strongest cross-module correctness check (the
 * GPU-side and device-side states evolve independently and must stay
 * consistent token by token).
 */

#ifndef LONGSIGHT_SIM_DECODE_PIPELINE_HH
#define LONGSIGHT_SIM_DECODE_PIPELINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/hybrid_attention.hh"
#include "core/kv_cache.hh"
#include "drex/drex_device.hh"
#include "model/workload.hh"

namespace longsight {

/**
 * Pipeline shape parameters (a slice of ModelConfig plus hybrid
 * settings small enough for functional simulation).
 */
struct PipelineConfig
{
    uint32_t numLayers = 2;
    uint32_t numQueryHeads = 8;
    uint32_t numKvHeads = 2;
    uint32_t headDim = 64;
    LongSightConfig hybrid;
    /** Tokens per bulk flush to DReX (Key Object group size, §6). */
    uint32_t flushGranularity = 128;
    bool trainItq = false;
    uint64_t seed = 1;
};

/**
 * Outcome of one decode step across all layers and query heads.
 */
struct PipelineStepResult
{
    uint64_t offloadsIssued = 0;  //!< device requests this step
    uint64_t tokensFlushed = 0;   //!< KV pairs shipped to DReX
    double minRetainedMass = 1.0; //!< worst (layer, query) retention
    bool deviceMatchedSoftware = true; //!< top-k equivalence held
};

/**
 * One user's functional decode loop over a DReX device.
 */
class DecodePipeline
{
  public:
    DecodePipeline(const PipelineConfig &cfg, DrexDevice &device,
                   uint32_t uid);

    /** Build an initial context of n tokens and flush eligible groups. */
    void prefill(size_t n);

    /** Generate one token: append KV, maybe flush, offload, combine. */
    PipelineStepResult decodeStep();

    /** Current context length (tokens). */
    size_t contextLength() const;

    /** Tokens already resident on the device (per layer/head). */
    size_t flushedTokens() const { return flushed_; }

    /** Tokens still staged GPU-side beyond the flushed prefix. */
    size_t stagedTokens() const { return contextLength() - flushed_; }

  private:
    KvCache &gpuCache(uint32_t layer, uint32_t head);
    void flushEligibleGroups();
    void maybeTrainItq();

    PipelineConfig cfg_;
    DrexDevice &device_;
    uint32_t uid_;
    // One workload per (layer, KV head) drives keys/values/queries.
    std::vector<HeadWorkload> workloads_;
    std::vector<std::unique_ptr<KvCache>> gpuCaches_;
    size_t flushed_ = 0;
    bool itqInstalled_ = false;

    // Decode-step scratch reused across steps (capacities persist, so
    // the steady-state step re-fills these without heap allocation).
    std::vector<Matrix> stepQueries_;       //!< per KV head: group x d
    std::vector<Matrix> stepFilterQueries_; //!< ITQ-space twins
    std::vector<double> laneMass_;          //!< per-lane retained mass
    std::vector<uint8_t> laneMatched_;      //!< per-lane A-verdict
};

} // namespace longsight

#endif // LONGSIGHT_SIM_DECODE_PIPELINE_HH

/**
 * @file
 * Functional end-to-end decode pipeline for one user (§6 execution
 * model): per-(layer, KV-head) KV caches on the "GPU" side, a staging
 * window that accumulates freshly generated KV pairs and flushes them
 * to the DReX device in 128-token object groups off the critical
 * path, and a decode step that offloads the sparse region per GQA
 * group to the device and combines the returned top-k with the local
 * dense window — verifiably equal to the all-software reference.
 *
 * This is the integration glue a real serving stack would own; here
 * it doubles as the strongest cross-module correctness check (the
 * GPU-side and device-side states evolve independently and must stay
 * consistent token by token).
 *
 * Attention work is dispatched per (layer, KV HEAD): each work item
 * serves its head's whole GQA query group with one pass over the
 * cache (the grouped multi-query kernels), and decodeStepBatch
 * extends the same grouping across concurrent requests — all queries
 * that hit the same (layer, KV head) across a serving batch are
 * adjacent in the dispatch order.
 */

#ifndef LONGSIGHT_SIM_DECODE_PIPELINE_HH
#define LONGSIGHT_SIM_DECODE_PIPELINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/hybrid_attention.hh"
#include "core/kv_cache.hh"
#include "core/prefill_attention.hh"
#include "drex/drex_device.hh"
#include "model/workload.hh"
#include "sim/serving.hh"

namespace longsight {

/**
 * Pipeline shape parameters (a slice of ModelConfig plus hybrid
 * settings small enough for functional simulation).
 */
struct PipelineConfig
{
    uint32_t numLayers = 2;
    uint32_t numQueryHeads = 8;
    uint32_t numKvHeads = 2;
    uint32_t headDim = 64;
    LongSightConfig hybrid;
    /** Tokens per bulk flush to DReX (Key Object group size, §6). */
    uint32_t flushGranularity = 128;
    bool trainItq = false;
    uint64_t seed = 1;

    /**
     * Paged GPU-side KV storage: the pipeline constructs a private
     * KvBlockPool of pagedPoolBlocks blocks x pagedBlockTokens tokens
     * and every (layer, KV head) cache becomes a block-table view into
     * it. Outputs are bit-identical to the flat layout; only storage
     * (and the residency accounting the pool keeps) changes.
     */
    bool pagedKv = false;
    uint32_t pagedBlockTokens = 128;
    /** Pool size in blocks; 0 = size for maxContext tokens/head. */
    uint32_t pagedPoolBlocks = 0;
    /** Context ceiling used to size a default pool (tokens). */
    uint32_t pagedMaxContext = 4096;

    /**
     * Block-sparse prompt pass (ROADMAP item 3): when enabled,
     * prefill()/prefillChunk() also run a BlockSparsePrefill per
     * (layer, KV head) over the prompt stream (self-queries: each
     * token's key doubles as its query vector, which keeps the
     * workloads' RNG streams untouched and every decode result
     * bit-identical to a pipeline without this path). Complete
     * Q-blocks are attended as chunks arrive; the partial tail is
     * deferred until flushPrefillAttention() — called automatically
     * before the first decode step — so chunked and monolithic
     * prefill stay bit-identical. Outputs land in
     * prefillAttentionOutput(layer, head).
     */
    bool prefillAttention = false;
    PrefillSparsityConfig prefillSparsity;
    /** Per-KV-head threshold override (the per-head accuracy knob);
     *  empty = prefillSparsity.threshold everywhere, else must hold
     *  numKvHeads entries. */
    std::vector<int> prefillHeadThresholds;
};

/**
 * Outcome of one decode step across all layers and query heads.
 */
struct PipelineStepResult
{
    uint64_t offloadsIssued = 0;  //!< device requests this step
    uint64_t tokensFlushed = 0;   //!< KV pairs shipped to DReX
    double minRetainedMass = 1.0; //!< worst (layer, query) retention
    bool deviceMatchedSoftware = true; //!< top-k equivalence held
};

/**
 * One user's functional decode loop over a DReX device.
 */
class DecodePipeline
{
  public:
    DecodePipeline(const PipelineConfig &cfg, DrexDevice &device,
                   uint32_t uid);

    /** Build an initial context of n tokens and flush eligible groups. */
    void prefill(size_t n);

    /**
     * Chunked-prefill hook for the serving engine: extend the prompt
     * by n more tokens and flush eligible groups. Chaining chunks is
     * bit-identical to one prefill() of the total (the workloads'
     * append path replays the exact token stream generate() would
     * produce), so a scheduler can interleave prompt chunks with
     * decode steps without perturbing any downstream result. The one
     * caveat is runtime ITQ training (trainItq): it fires once at a
     * context-length threshold, so chunk boundaries change which
     * prefix it trains on — train before chunking (or leave it off,
     * the default) when exact equivalence matters.
     */
    void prefillChunk(size_t n);

    /** Generate one token: append KV, maybe flush, offload, combine. */
    PipelineStepResult decodeStep();

    /**
     * Batched decode step for several concurrent requests (one
     * pipeline per resident serving job; all must share one model
     * shape). Produces results[i] bit-identical to calling
     * batch[i]->decodeStep() in order — only the work-item dispatch
     * changes: within each layer, combine/verify items are issued
     * KV-head-major across the whole batch, so every request's queries
     * against the same (layer, KV head) are adjacent and each item
     * serves its whole GQA group with ONE pass over that head's cache
     * (batchScoreSelectMulti). Returns the step's scan-amortization
     * accounting.
     */
    static GroupedScanStats decodeStepBatch(
        const std::vector<DecodePipeline *> &batch,
        std::vector<PipelineStepResult> &results);

    /**
     * Finish the block-sparse prompt pass: attend the deferred
     * partial tail Q-block and freeze the pass (later context growth
     * is decode, not prompt). Called automatically before the first
     * decode step; explicit calls are idempotent. No-op when
     * prefillAttention is disabled.
     */
    void flushPrefillAttention();

    /** Per-query sparse prompt-pass outputs for one (layer, KV head);
     *  rows [0, processedTokens) are valid. */
    const Matrix &prefillAttentionOutput(uint32_t layer,
                                         uint32_t kv_head) const;

    /** The head's prompt-pass state (stats, decisions, processed). */
    const BlockSparsePrefill &prefillAttentionHead(uint32_t layer,
                                                   uint32_t kv_head) const;

    /** Prompt-pass stats merged over every (layer, KV head). */
    PrefillStats prefillAttentionStats() const;

    /** Current context length (tokens). */
    size_t contextLength() const;

    /** Tokens already resident on the device (per layer/head). */
    size_t flushedTokens() const { return flushed_; }

    /** Tokens still staged GPU-side beyond the flushed prefix. */
    size_t stagedTokens() const { return contextLength() - flushed_; }

    /** Query heads sharing each KV head (fixed GQA group size). */
    uint32_t groupSize() const { return group_; }

    /** The paged pool behind the GPU-side caches (null when flat). */
    KvBlockPool *blockPool() { return pool_.get(); }

  private:
    KvCache &gpuCache(uint32_t layer, uint32_t head);
    void flushEligibleGroups();
    void maybeTrainItq();
    /** Run the sparse prompt pass over newly appended prompt tokens
     *  (complete Q-blocks only unless flush). */
    void advancePrefillAttention(bool flush);

    /** Step phase 1-2: append one token everywhere, flush, size the
     *  per-step scratch. */
    void stepAppendAndFlush(PipelineStepResult &result);
    /** Step phase 3 for one layer: draw the grouped queries, submit
     *  the offload, drain responses. Returns whether an offload was
     *  issued (false while the flushed prefix is still dense). */
    bool stepOffloadLayer(uint32_t layer, PipelineStepResult &result,
                          std::vector<AttentionResponse> &responses);
    /** Step phase 4 for one (layer, KV head): combine + verify the
     *  head's WHOLE query group — one grouped scan serves all its
     *  queries' verifications. Writes only this head's lane slots. */
    void stepCombineHead(uint32_t layer, uint32_t kv_head, bool offload,
                         const std::vector<AttentionResponse> &responses);
    /** Fold the layer's lane verdicts into the step result. */
    void stepFoldLayer(PipelineStepResult &result);

    PipelineConfig cfg_;
    DrexDevice &device_;
    uint32_t uid_;
    /** Query-head -> KV-head group size, derived once at construction
     *  (numQueryHeads / numKvHeads) instead of per decode step. */
    uint32_t group_ = 1;
    // One workload per (layer, KV head) drives keys/values/queries.
    std::vector<HeadWorkload> workloads_;
    std::unique_ptr<KvBlockPool> pool_; //!< paged mode backing store
    std::vector<std::unique_ptr<KvCache>> gpuCaches_;
    size_t flushed_ = 0;
    bool itqInstalled_ = false;

    // Block-sparse prompt pass, one per (layer, KV head); empty when
    // cfg.prefillAttention is off. Frozen after the first flush so
    // decode-appended tokens are never mistaken for prompt queries.
    std::vector<std::unique_ptr<BlockSparsePrefill>> prefillAttn_;
    std::vector<Matrix> prefillOut_;
    bool prefillFrozen_ = false;

    // Decode-step scratch reused across steps (capacities persist, so
    // the steady-state step re-fills these without heap allocation).
    std::vector<Matrix> stepQueries_;       //!< per KV head: group x d
    std::vector<Matrix> stepFilterQueries_; //!< ITQ-space twins
    std::vector<double> laneMass_;          //!< per-lane retained mass
    std::vector<uint8_t> laneMatched_;      //!< per-lane A-verdict
    /** decodeStep()'s one-element batch view and result slot, kept as
     *  members so the single-request step allocates nothing per call. */
    std::vector<DecodePipeline *> selfBatch_;
    std::vector<PipelineStepResult> selfResults_;
};

} // namespace longsight

#endif // LONGSIGHT_SIM_DECODE_PIPELINE_HH

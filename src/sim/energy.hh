/**
 * @file
 * Energy-per-token model extending the paper's §9.4 power analysis.
 * The paper reports peak power (158.2 W per DReX unit); serving cost
 * comparisons also need *energy per generated token*, which this
 * model derives from per-access energy constants (pJ/bit, pJ/FLOP)
 * applied to the same traffic counts the timing models use: weight
 * and KV streaming on the GPU, sign-bit filtering + survivor key
 * fetches + value reads inside DReX, and CXL payloads.
 */

#ifndef LONGSIGHT_SIM_ENERGY_HH
#define LONGSIGHT_SIM_ENERGY_HH

#include <cstdint>

#include "model/model_config.hh"

namespace longsight {

/**
 * Per-access energy constants (typical published figures).
 */
struct EnergyConstants
{
    double lpddrPjPerBit = 4.0;  //!< LPDDR5X array + IO access
    double hbmPjPerBit = 7.0;    //!< HBM3 access (GPU side)
    double pfuPjPerBit = 0.05;   //!< in-DRAM sign comparison
    double nmaPjPerFlop = 0.5;   //!< 16 nm near-memory MAC
    double cxlPjPerBit = 5.0;    //!< SerDes + controller per bit moved
    double gpuPjPerFlop = 0.7;   //!< H100 ballpark (700 W / ~1 PFLOP/s)
};

/**
 * Energy of generating one token, by component.
 */
struct TokenEnergy
{
    double gpuJ = 0.0;
    double drexJ = 0.0;
    double cxlJ = 0.0;

    double totalJ() const { return gpuJ + drexJ + cxlJ; }
};

/**
 * Hybrid-attention parameters the energy model needs.
 */
struct EnergyHybridConfig
{
    uint32_t windowSize = 1024;
    uint32_t sinkTokens = 16;
    uint32_t topK = 1024;
    double filterRatio = 20.0; //!< Fig-3 average (§8.2)
};

/**
 * Energy accounting for dense-GPU and LongSight decoding.
 */
class EnergyModel
{
  public:
    EnergyModel(const EnergyConstants &constants,
                const ModelConfig &model);

    /** Dense 1-GPU decode: weights + full KV stream + compute. */
    TokenEnergy denseGpuToken(uint64_t context_len) const;

    /** LongSight decode: GPU window + DReX offload + CXL payloads. */
    TokenEnergy longSightToken(uint64_t context_len,
                               const EnergyHybridConfig &cfg) const;

    const EnergyConstants &constants() const { return constants_; }

  private:
    /** GPU-side energy shared by both systems (non-attention work). */
    double nonAttentionJ() const;

    EnergyConstants constants_;
    ModelConfig model_;
};

} // namespace longsight

#endif // LONGSIGHT_SIM_ENERGY_HH

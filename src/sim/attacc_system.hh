/**
 * @file
 * AttAcc-like baseline (§8.2, [29]): a single GPU paired with
 * bank-level HBM-PIM units that execute the *dense* attention of the
 * decode phase at the PIM's much higher internal bandwidth, while the
 * GPU runs everything else. Capacity remains bounded by the HBM the
 * KV cache lives in, and attention stays O(context) per token — the
 * two properties that let LongSight overtake it at long contexts.
 */

#ifndef LONGSIGHT_SIM_ATTACC_SYSTEM_HH
#define LONGSIGHT_SIM_ATTACC_SYSTEM_HH

#include <cstdint>

#include "gpu/gpu_model.hh"
#include "model/model_config.hh"
#include "sim/serving.hh"

namespace longsight {

/**
 * AttAcc hardware parameters.
 */
struct AttAccConfig
{
    /**
     * Effective bank-level PIM bandwidth for attention. AttAcc reports
     * roughly an order of magnitude over external HBM bandwidth from
     * bank parallelism; 4x sustained is a conservative end-to-end
     * figure once command overheads are included.
     */
    double pimBandwidthMultiplier = 4.0;
    double pimEfficiency = 0.8;
};

/**
 * GPU + HBM-PIM dense-attention serving.
 */
class AttAccSystem
{
  public:
    AttAccSystem(const GpuConfig &gpu, const ModelConfig &model,
                 const AttAccConfig &cfg = AttAccConfig{});

    ServingResult decode(uint64_t context_len, uint32_t users) const;

    uint32_t maxUsers(uint64_t context_len) const;

  private:
    GpuModel gpu_;
    AttAccConfig cfg_;
};

} // namespace longsight

#endif // LONGSIGHT_SIM_ATTACC_SYSTEM_HH

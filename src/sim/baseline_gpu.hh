/**
 * @file
 * GPU-only dense-attention serving baselines for Figure 7: a 1-GPU
 * system and a 2-GPU data-parallel system (§8.2: data parallelism
 * duplicates weights but adds no communication, so each GPU simply
 * serves half the batch). Also the sliding-window-only baseline of
 * §9.3 — a GPU that attends to sinks + window and drops the rest.
 */

#ifndef LONGSIGHT_SIM_BASELINE_GPU_HH
#define LONGSIGHT_SIM_BASELINE_GPU_HH

#include <cstdint>

#include "gpu/gpu_model.hh"
#include "model/model_config.hh"
#include "sim/serving.hh"

namespace longsight {

/**
 * N-GPU data-parallel dense-attention decoding.
 */
class BaselineGpuSystem
{
  public:
    BaselineGpuSystem(const GpuConfig &gpu, const ModelConfig &model,
                      uint32_t num_gpus);

    /** Steady-state decode for `users` at `context_len`. */
    ServingResult decode(uint64_t context_len, uint32_t users) const;

    /** Largest user count whose KV caches fit across all GPUs. */
    uint32_t maxUsers(uint64_t context_len) const;

    uint32_t numGpus() const { return numGpus_; }
    const GpuModel &gpuModel() const { return gpu_; }

  private:
    GpuModel gpu_;
    uint32_t numGpus_;
};

/**
 * GPU-only sliding-window attention (§9.3): dense over sinks + the
 * last W tokens regardless of context length. Quality is evaluated by
 * the algorithm layer; this models only performance.
 */
class SlidingWindowSystem
{
  public:
    SlidingWindowSystem(const GpuConfig &gpu, const ModelConfig &model,
                        uint32_t window, uint32_t sinks);

    ServingResult decode(uint64_t context_len, uint32_t users) const;

    /** Window KV is all that must fit (context is discarded). */
    uint32_t maxUsers() const;

  private:
    GpuModel gpu_;
    uint32_t window_;
    uint32_t sinks_;
};

} // namespace longsight

#endif // LONGSIGHT_SIM_BASELINE_GPU_HH

#include "sim/attacc_system.hh"

namespace longsight {

AttAccSystem::AttAccSystem(const GpuConfig &gpu, const ModelConfig &model,
                           const AttAccConfig &cfg)
    : gpu_(gpu, model), cfg_(cfg)
{
}

uint32_t
AttAccSystem::maxUsers(uint64_t context_len) const
{
    // KV lives in the (PIM-enabled) HBM: same capacity bound as 1-GPU.
    return gpu_.maxUsersDense(context_len);
}

ServingResult
AttAccSystem::decode(uint64_t context_len, uint32_t users) const
{
    ServingResult r;
    r.users = users;
    if (users == 0 || users > maxUsers(context_len)) {
        r.limitedBy = "HBM-PIM capacity";
        return r;
    }
    r.feasible = true;

    const Tick non_attn = gpu_.decodeNonAttentionTime(users);

    // Dense attention at PIM bandwidth: the KV stream never crosses
    // the external HBM interface.
    const ModelConfig &m = gpu_.model();
    const double kv_bytes = static_cast<double>(m.kvBytesPerToken()) *
        static_cast<double>(context_len) * users;
    const double pim_bw = gpu_.gpu().hbmBandwidth *
        cfg_.pimBandwidthMultiplier * cfg_.pimEfficiency;
    const Tick attn = static_cast<Tick>(kv_bytes / pim_bw * 1e12);

    r.stepTime = non_attn + attn;
    r.breakdown.gpuNonAttention = non_attn;
    r.breakdown.drexExposed = attn; // PIM-side attention component
    r.finalize();
    return r;
}

} // namespace longsight

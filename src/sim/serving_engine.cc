#include "sim/serving_engine.hh"

#include <algorithm>
#include <deque>

#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

namespace {

/**
 * One request's residency state. The same record rides the waiting
 * queues (fresh arrivals with zero progress, preempted requests with
 * their retained prefix) and the active batch.
 */
struct Resident
{
    ServingRequest req;
    uint64_t prefilled = 0;    //!< prompt tokens with resident KV
    uint32_t generated = 0;
    bool needsRestore = false; //!< retained prefix awaits block refill
    Tick firstTokenAt = 0;
    Tick lastTokenAt = 0;
    uint32_t preemptions = 0;
    double maxTbtMs = 0.0;
    uint64_t seq = 0; //!< admission order, for newest-first preemption

    uint64_t context() const { return req.promptLen + generated; }

    /** Blocks are reserved for the full prompt + output up front, the
     *  same currency the PR 6 admission gate used. */
    uint64_t reservedTokens() const
    {
        return req.promptLen + req.outputTokens;
    }

    /** Adopted-prefix tokens (clamped): these need no new blocks for
     *  their full blocks and no prefill compute. */
    uint64_t sharedPrefix() const
    {
        return std::min(req.sharedPrefixTokens, req.promptLen);
    }

    bool runnable() const
    {
        return prefilled >= req.promptLen && !needsRestore;
    }
};

} // namespace

std::function<Tick(uint64_t, uint64_t)>
sparsePrefillChunkTime(std::function<Tick(uint64_t, uint64_t)> dense,
                       const SparsePrefillCostParams &params)
{
    LS_ASSERT(params.attentionShare >= 0.0 &&
                  params.attentionShare <= 1.0,
              "attentionShare out of [0,1]: ", params.attentionShare);
    LS_ASSERT(params.attendedFraction >= 0.0, "negative attendedFraction");
    LS_ASSERT(params.estimationOverhead >= 0.0,
              "negative estimationOverhead");
    const double scale = (1.0 - params.attentionShare) +
        params.attentionShare *
            (params.attendedFraction + params.estimationOverhead);
    return [dense = std::move(dense), scale](uint64_t chunk,
                                             uint64_t done) -> Tick {
        const double t = static_cast<double>(dense(chunk, done)) * scale;
        return static_cast<Tick>(t + 0.5);
    };
}

ServingEngineResult::ServingEngineResult(const SloTargets &slo)
    : ttftHist(sloHistogram(slo.ttftMs)), tbtHist(sloHistogram(slo.tbtMs))
{
}

void
ServingEngineResult::finalize(const SloTargets &slo)
{
    ttftP50Ms = ttftHist.quantile(0.5);
    ttftP99Ms = ttftHist.quantile(0.99);
    tbtP50Ms = tbtHist.quantile(0.5);
    tbtP99Ms = tbtHist.quantile(0.99);
    ttftOverflow = ttftHist.count()
        ? static_cast<double>(ttftHist.overflow()) /
            static_cast<double>(ttftHist.count())
        : 0.0;
    tbtOverflow = tbtHist.count()
        ? static_cast<double>(tbtHist.overflow()) /
            static_cast<double>(tbtHist.count())
        : 0.0;

    uint64_t attained_requests = 0;
    uint64_t attained_tokens = 0;
    for (auto &r : requests) {
        r.sloAttained = toSeconds(r.ttft) * 1e3 <= slo.ttftMs &&
            r.maxTbtMs <= slo.tbtMs;
        if (r.sloAttained) {
            ++attained_requests;
            attained_tokens += r.tokens;
        }
    }
    sloAttainment = requests.empty()
        ? 0.0
        : static_cast<double>(attained_requests) /
            static_cast<double>(requests.size());
    if (makespan > 0) {
        throughputTokensPerSec =
            static_cast<double>(totalTokens) / toSeconds(makespan);
        goodputTokensPerSec =
            static_cast<double>(attained_tokens) / toSeconds(makespan);
    }
}

ServingEngine::ServingEngine(const ServingEngineConfig &cfg,
                             const ServingCostModel &cost,
                             BlockLedger *ledger)
    : cfg_(cfg), cost_(cost), ledger_(ledger)
{
    LS_ASSERT(cfg_.maxBatch > 0, "engine must admit at least one request");
    LS_ASSERT(cost_.decodeStepTime, "decode cost callback must be set");
}

ServingEngineResult
ServingEngine::run(std::vector<ServingRequest> trace)
{
    LS_DETERMINISTIC();
    LS_ASSERT(!ledger_ || ledger_->inUse() == 0,
              "ledger carries reservations from a previous run");
    for (const ServingRequest &r : trace) {
        LS_ASSERT(r.outputTokens > 0, "request ", r.id,
                  " has no output budget");
        LS_ASSERT(!ledger_ ||
                      ledger_->privateBlocksFor(
                          r.promptLen + r.outputTokens,
                          std::min(r.sharedPrefixTokens, r.promptLen)) <=
                          ledger_->budget(),
                  "request ", r.id, " cannot fit the block budget even "
                  "alone; the budget is misconfigured");
    }
    std::sort(trace.begin(), trace.end(),
              [](const ServingRequest &a, const ServingRequest &b) {
                  return a.arrival < b.arrival ||
                      (a.arrival == b.arrival && a.id < b.id);
              });

    ServingEngineResult result(cfg_.slo);
    result.blockBudget = ledger_ ? ledger_->budget() : 0;

    // waiting[1] = Interactive, waiting[0] = Batch; strict priority,
    // FIFO within a class, preempted requests resume from the front.
    std::deque<Resident> waiting[2];
    std::vector<Resident> active; // admission order (erases preserve it)
    size_t next_arrival = 0;
    Tick now = 0;
    uint64_t admit_seq = 0;
    std::vector<uint64_t> contexts;   // decode-step scratch
    std::vector<size_t> decoders;

    const auto waiting_empty = [&] {
        return waiting[0].empty() && waiting[1].empty();
    };
    const auto pull_arrivals = [&] {
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival <= now) {
            Resident r;
            r.req = trace[next_arrival++];
            // An adopted prefix arrives with resident KV: its tokens
            // skip prefill compute entirely.
            r.prefilled = r.sharedPrefix();
            waiting[r.req.priority == Priority::Interactive ? 1 : 0]
                .push_back(r);
        }
    };

    // Admit the head of one class if a slot and the block budget
    // allow. Admission itself charges no time: the admitted request's
    // prefill is paid chunk by chunk in subsequent steps.
    const auto try_admit = [&](int cls) {
        if (waiting[cls].empty() || active.size() >= cfg_.maxBatch)
            return false;
        Resident &head = waiting[cls].front();
        if (ledger_) {
            if (!ledger_->canReserve(head.reservedTokens(),
                                     head.sharedPrefix())) {
                ++result.gateHolds;
                return false;
            }
            ledger_->reserve(head.reservedTokens(), head.sharedPrefix());
            result.prefixBlocksSaved +=
                ledger_->blocksFor(head.reservedTokens()) -
                ledger_->privateBlocksFor(head.reservedTokens(),
                                          head.sharedPrefix());
            result.peakBlocks =
                std::max(result.peakBlocks, ledger_->inUse());
        }
        head.seq = admit_seq++;
        active.push_back(head);
        waiting[cls].pop_front();
        result.peakActive = std::max(
            result.peakActive, static_cast<uint32_t>(active.size()));
        return true;
    };

    // Preempt the newest-admitted Batch resident: release its blocks,
    // re-queue it at the front of the Batch class with its prefix
    // (prefilled + generated) retained. It will re-acquire blocks on
    // re-admission and pay a restore transfer, not a re-prefill.
    const auto preempt_one = [&] {
        size_t victim = active.size();
        for (size_t i = 0; i < active.size(); ++i) {
            if (active[i].req.priority != Priority::Batch)
                continue;
            if (victim == active.size() ||
                active[i].seq > active[victim].seq)
                victim = i;
        }
        if (victim == active.size())
            return false;
        Resident job = active[victim];
        active.erase(active.begin() +
                     static_cast<ptrdiff_t>(victim));
        if (ledger_)
            ledger_->release(job.reservedTokens(), job.sharedPrefix());
        // The adopted prefix stays published in the pool; only private
        // progress beyond it needs a restore transfer on resumption.
        job.needsRestore = job.prefilled > job.sharedPrefix() ||
            job.generated > 0;
        ++job.preemptions;
        ++result.preemptions;
        waiting[0].push_front(job);
        return true;
    };

    const auto admissible = [&](const Resident &head) {
        return active.size() < cfg_.maxBatch &&
            (!ledger_ || ledger_->canReserve(head.reservedTokens(),
                                             head.sharedPrefix()));
    };

    while (next_arrival < trace.size() || !waiting_empty() ||
           !active.empty()) {
        pull_arrivals();

        // Idle engine: jump to the next arrival.
        if (active.empty() && waiting_empty()) {
            LS_ASSERT(next_arrival < trace.size(), "engine stuck idle");
            now = std::max(now, trace[next_arrival].arrival);
            pull_arrivals();
            continue;
        }

        // A blocked Interactive head evicts Batch work (newest first)
        // until it fits or no Batch resident remains.
        if (cfg_.preemption && !waiting[1].empty()) {
            while (!admissible(waiting[1].front()) && preempt_one()) {
            }
        }

        // Admission: Interactive strictly first; Batch heads are held
        // while any Interactive request waits (admitting one would
        // consume the blocks the preemption above just freed).
        for (;;) {
            if (try_admit(1))
                continue;
            if (waiting[1].empty() && try_admit(0))
                continue;
            break;
        }

        // Snapshot this step's decoders BEFORE prefill work: a
        // request whose last chunk lands this step joins the batch
        // next step, mirroring a real iteration boundary.
        decoders.clear();
        contexts.clear();
        for (size_t i = 0; i < active.size(); ++i) {
            if (active[i].runnable()) {
                decoders.push_back(i);
                contexts.push_back(active[i].context());
            }
        }

        // One prefill chunk (or one preempted-prefix restore) rides
        // along with the decode iteration, oldest resident first —
        // the chunked-prefill interleave that bounds decode TBT.
        Tick step = 0;
        bool did_work = false;
        for (auto &job : active) {
            if (job.needsRestore) {
                if (cost_.restoreTime)
                    step += cost_.restoreTime(job.context());
                job.needsRestore = false;
                ++result.restores;
                did_work = true;
                break;
            }
            if (job.prefilled < job.req.promptLen) {
                const uint64_t remaining =
                    job.req.promptLen - job.prefilled;
                const uint64_t chunk = cfg_.prefillChunkTokens
                    ? std::min<uint64_t>(cfg_.prefillChunkTokens,
                                         remaining)
                    : remaining;
                if (cost_.prefillChunkTime)
                    step += cost_.prefillChunkTime(chunk, job.prefilled);
                job.prefilled += chunk;
                ++result.prefillChunks;
                did_work = true;
                break;
            }
        }

        if (!decoders.empty())
            step += cost_.decodeStepTime(contexts);
        else
            LS_ASSERT(did_work, "engine step with nothing to run");
        now += step;

        // Token bookkeeping for this iteration's decoders.
        for (size_t i : decoders) {
            Resident &job = active[i];
            ++job.generated;
            if (job.generated == 1) {
                job.firstTokenAt = now;
                const double ms =
                    toSeconds(now - job.req.arrival) * 1e3;
                result.ttftMs.add(ms);
                result.ttftHist.add(ms);
            } else {
                const double ms = toSeconds(now - job.lastTokenAt) * 1e3;
                result.tbtMs.add(ms);
                result.tbtHist.add(ms);
                job.maxTbtMs = std::max(job.maxTbtMs, ms);
            }
            job.lastTokenAt = now;
            ++result.totalTokens;
        }

        // Per-step leave: spent requests release their blocks and
        // free their slots before the next admission pass.
        for (auto it = active.begin(); it != active.end();) {
            if (it->generated >= it->req.outputTokens) {
                if (ledger_)
                    ledger_->release(it->reservedTokens(),
                                     it->sharedPrefix());
                RequestMetrics m;
                m.id = it->req.id;
                m.priority = it->req.priority;
                m.ttft = it->firstTokenAt - it->req.arrival;
                m.completion = now;
                m.tokens = it->generated;
                m.maxTbtMs = it->maxTbtMs;
                m.preemptions = it->preemptions;
                result.requests.push_back(m);
                it = active.erase(it);
            } else {
                ++it;
            }
        }
    }

    result.makespan = now;
    result.finalize(cfg_.slo);
    return result;
}

} // namespace longsight

/**
 * @file
 * A minimal discrete-event simulation kernel in the gem5 tradition:
 * a global tick counter (picoseconds) and an ordered queue of
 * callbacks. Events scheduled for the same tick fire in insertion
 * order, which keeps multi-component pipelines deterministic.
 */

#ifndef LONGSIGHT_SIM_EVENT_QUEUE_HH
#define LONGSIGHT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "util/units.hh"

namespace longsight {

/**
 * Ordered event queue driving all timed components of a simulation.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule a callback at an absolute tick (>= now). */
    void scheduleAt(Tick when, Callback cb);

    /** Schedule a callback `delay` ticks from now. */
    void scheduleAfter(Tick delay, Callback cb);

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    size_t pending() const;

    /**
     * Run until the queue drains (or an event cap is hit, guarding
     * against runaway self-rescheduling). Returns the final tick.
     */
    Tick run(uint64_t max_events = UINT64_MAX);

    /** Run events with time <= until; later events stay queued. */
    Tick runUntil(Tick until);

  private:
    Tick now_ = 0;
    uint64_t seq_ = 0; // insertion order tiebreaker
    std::map<std::pair<Tick, uint64_t>, Callback> events_;
};

} // namespace longsight

#endif // LONGSIGHT_SIM_EVENT_QUEUE_HH

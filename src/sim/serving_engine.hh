/**
 * @file
 * SLO-aware continuous-batching serving engine: the promotion of the
 * batch-scheduler / SLO-sim scaffolding into the serving layer the
 * north star means by "heavy traffic from millions of users". The
 * engine owns four policies the plain scheduler lacked:
 *
 *  1. *Admission control* against a KV block budget (the PR 6
 *     canAdmit gate, now a BlockLedger): a request joins only when
 *     prompt + output budget fit the free pool, so peak memory is
 *     bounded by capacity, not by a guess at a request cap.
 *
 *  2. *Continuous batching with per-step join/leave*: requests join
 *     the running batch the step after their prefill completes and
 *     leave the step their output budget is spent; slots refill
 *     without draining the batch.
 *
 *  3. *Chunked prefill interleaved with decode* (the Sarathi-style
 *     schedule the paper's §2.1/§3 batched-inference discussion
 *     assumes around the attention kernel): a long prompt is split
 *     into fixed-token chunks and at most one chunk rides along with
 *     each decode iteration, so running streams' time-between-tokens
 *     stays bounded by (decode + one chunk) while a 32K prompt
 *     prefills, instead of stalling for the whole prompt.
 *
 *  4. *Priority classes with preemption*: when an Interactive request
 *     is blocked on the block budget, the engine preempts
 *     newest-first Batch requests — a preempted request releases its
 *     blocks and re-queues at the front of its class, its prefix
 *     (prefilled prompt + generated tokens) retained in the
 *     compute-enabled expander tier, so resumption re-acquires blocks
 *     and pays only a restore transfer, never a re-prefill.
 *
 * The engine is a deterministic discrete-time loop over an abstract
 * cost model (three callbacks), so the same schedule drives
 * LongSight, dense-GPU, or closed-form engines, and metrics are
 * bit-identical for a fixed seed at any thread count — the step loop
 * carries the LS_DETERMINISTIC contract, lint-enforced.
 */

#ifndef LONGSIGHT_SIM_SERVING_ENGINE_HH
#define LONGSIGHT_SIM_SERVING_ENGINE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "drex/partition_manager.hh"
#include "model/traffic.hh"
#include "sim/serving.hh"
#include "util/stats.hh"
#include "util/units.hh"

namespace longsight {

/**
 * Engine policy knobs.
 */
struct ServingEngineConfig
{
    /** Max requests resident at once (prefilling + decoding). */
    uint32_t maxBatch = 64;

    /**
     * Prefill chunk quantum (tokens). One chunk is processed per
     * engine step, fused with the decode iteration. 0 disables
     * chunking (a prompt prefills monolithically in one step —
     * the pre-engine scheduler's behaviour, kept for comparison).
     */
    uint32_t prefillChunkTokens = 2048;

    /** Allow preempting Batch requests for blocked Interactive ones. */
    bool preemption = true;

    /** Latency objectives goodput is scored against. */
    SloTargets slo;
};

/**
 * The engine's cost model. decodeStepTime is required; the others
 * may be null (zero cost).
 */
struct ServingCostModel
{
    /**
     * Cost of prefilling one chunk of `chunk_tokens` prompt tokens
     * when `done_tokens` of the prompt are already resident (models
     * can charge for attention against the growing prefix).
     */
    std::function<Tick(uint64_t chunk_tokens, uint64_t done_tokens)>
        prefillChunkTime;

    /** One decode iteration over the decoding requests' contexts. */
    std::function<Tick(const std::vector<uint64_t> &contexts)>
        decodeStepTime;

    /**
     * Cost of restoring a preempted request's retained prefix of
     * `context_tokens` tokens into freshly re-acquired blocks (e.g.
     * a CXL bulk transfer from the expander tier). Null = free.
     */
    std::function<Tick(uint64_t context_tokens)> restoreTime;
};

/**
 * Measured inputs for the block-sparse prompt pass's cost model
 * (core/prefill_attention): how much of a dense prefill chunk is
 * attention, what fraction of the dense Q.K token pairs the sparse
 * pass actually attends (BlockSparsePrefill stats), and what the
 * packed-sign block estimation itself costs relative to dense
 * attention. All three are deterministic for a fixed workload, so a
 * wrapped model stays gateable.
 */
struct SparsePrefillCostParams
{
    /** Attention's share of the dense chunk cost (0..1); the rest
     *  (projections/FFN) is unaffected by sparsity. */
    double attentionShare = 0.5;
    /** Attended / dense token-pair fraction (1 = fully dense). */
    double attendedFraction = 1.0;
    /** Signature build + scan cost as a fraction of the dense
     *  attention cost (the estimation overhead). */
    double estimationOverhead = 0.0;
};

/**
 * Wrap a dense prefillChunkTime callback into the sparse-prefill
 * model: chunk cost = dense * ((1 - attentionShare) + attentionShare
 * * (attendedFraction + estimationOverhead)). Degenerates to the
 * dense callback when attendedFraction = 1 and overhead = 0.
 */
std::function<Tick(uint64_t, uint64_t)> sparsePrefillChunkTime(
    std::function<Tick(uint64_t, uint64_t)> dense,
    const SparsePrefillCostParams &params);

/**
 * Completion record for one request.
 */
struct RequestMetrics
{
    uint32_t id = 0;
    Priority priority = Priority::Batch;
    Tick ttft = 0;        //!< arrival -> first generated token
    Tick completion = 0;  //!< absolute finish time
    uint32_t tokens = 0;  //!< generated tokens
    double maxTbtMs = 0.0; //!< worst streaming gap
    uint32_t preemptions = 0;
    bool sloAttained = false; //!< ttft and every tbt within targets
};

/**
 * Aggregate outcome of serving one trace.
 */
struct ServingEngineResult
{
    explicit ServingEngineResult(const SloTargets &slo);

    std::vector<RequestMetrics> requests; //!< completion order
    Tick makespan = 0;
    uint64_t totalTokens = 0;
    double throughputTokensPerSec = 0.0;
    /** Tokens of SLO-attained requests per second of makespan. */
    double goodputTokensPerSec = 0.0;
    /** Fraction of requests that attained both SLOs. */
    double sloAttainment = 0.0;

    RunningStat ttftMs;
    RunningStat tbtMs;
    Histogram ttftHist; //!< sized from slo.ttftMs (sloHistogram)
    Histogram tbtHist;  //!< sized from slo.tbtMs

    // Quantiles + overflow fractions, filled by finalize().
    double ttftP50Ms = 0.0, ttftP99Ms = 0.0, ttftOverflow = 0.0;
    double tbtP50Ms = 0.0, tbtP99Ms = 0.0, tbtOverflow = 0.0;

    // Schedule counters.
    uint64_t prefillChunks = 0; //!< chunk work items processed
    uint64_t restores = 0;      //!< preempted prefixes restored
    uint64_t preemptions = 0;
    uint64_t gateHolds = 0;     //!< admission attempts blocked on blocks
    uint32_t peakActive = 0;
    uint64_t peakBlocks = 0;
    uint64_t blockBudget = 0;
    /** Blocks NOT charged at admission because requests adopted a
     *  published prefix (summed over admissions, re-admissions too). */
    uint64_t prefixBlocksSaved = 0;

    /** Fill throughput/goodput/quantiles once the loop finishes. */
    void finalize(const SloTargets &slo);
};

/**
 * The engine. Construct with a config, cost model, and an optional
 * block ledger (null = unbounded memory); run() consumes one trace.
 * run() may be called repeatedly; each call starts from an idle
 * engine and an empty ledger.
 */
class ServingEngine
{
  public:
    ServingEngine(const ServingEngineConfig &cfg,
                  const ServingCostModel &cost,
                  BlockLedger *ledger = nullptr);

    /** Serve the trace to completion; deterministic in its inputs. */
    ServingEngineResult run(std::vector<ServingRequest> trace);

  private:
    ServingEngineConfig cfg_;
    ServingCostModel cost_;
    BlockLedger *ledger_;
};

} // namespace longsight

#endif // LONGSIGHT_SIM_SERVING_ENGINE_HH

#include "sim/decode_pipeline.hh"

#include <algorithm>
#include <cmath>

#include "core/attention.hh"
#include "core/itq.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "tensor/kernels.hh"
#include "util/annotations.hh"
#include "util/logging.hh"
#include "util/scratch_arena.hh"
#include "util/thread_pool.hh"

namespace longsight {

DecodePipeline::DecodePipeline(const PipelineConfig &cfg, DrexDevice &device,
                               uint32_t uid)
    : cfg_(cfg), device_(device), uid_(uid)
{
    LS_ASSERT(cfg.numQueryHeads % cfg.numKvHeads == 0,
              "GQA requires query heads % KV heads == 0");
    LS_ASSERT(device.config().headDim == cfg.headDim,
              "device head dim mismatch");
    // The query-head -> KV-head mapping is fixed for the pipeline's
    // lifetime; derive it once here, not per decode step.
    group_ = cfg_.numQueryHeads / cfg_.numKvHeads;
    WorkloadConfig wcfg;
    wcfg.headDim = cfg_.headDim;
    if (cfg_.pagedKv) {
        // One private pool serves every (layer, KV head) cache; size
        // it for the configured block count, or derive one from the
        // context ceiling when unset.
        uint32_t blocks = cfg_.pagedPoolBlocks;
        if (blocks == 0) {
            const uint32_t per_cache =
                (cfg_.pagedMaxContext + cfg_.pagedBlockTokens - 1) /
                cfg_.pagedBlockTokens;
            blocks = per_cache * cfg_.numLayers * cfg_.numKvHeads;
        }
        pool_ = std::make_unique<KvBlockPool>(
            cfg_.headDim, cfg_.pagedBlockTokens, blocks);
    }
    Rng root(cfg_.seed);
    for (uint32_t l = 0; l < cfg_.numLayers; ++l) {
        for (uint32_t h = 0; h < cfg_.numKvHeads; ++h) {
            workloads_.emplace_back(wcfg, root.fork());
            gpuCaches_.push_back(
                pool_ ? std::make_unique<KvCache>(*pool_)
                      : std::make_unique<KvCache>(cfg_.headDim));
        }
    }
    if (cfg_.prefillAttention) {
        LS_ASSERT(cfg_.prefillHeadThresholds.empty() ||
                      cfg_.prefillHeadThresholds.size() ==
                          cfg_.numKvHeads,
                  "prefillHeadThresholds must be empty or hold one "
                  "entry per KV head");
        for (uint32_t l = 0; l < cfg_.numLayers; ++l) {
            for (uint32_t h = 0; h < cfg_.numKvHeads; ++h) {
                PrefillSparsityConfig pc = cfg_.prefillSparsity;
                if (!cfg_.prefillHeadThresholds.empty())
                    pc.threshold = cfg_.prefillHeadThresholds[h];
                prefillAttn_.push_back(
                    std::make_unique<BlockSparsePrefill>(cfg_.headDim,
                                                         pc));
                prefillOut_.emplace_back(0, cfg_.headDim);
            }
        }
    }
}

KvCache &
DecodePipeline::gpuCache(uint32_t layer, uint32_t head)
{
    return *gpuCaches_[layer * cfg_.numKvHeads + head];
}

size_t
DecodePipeline::contextLength() const
{
    // A zero-layer or zero-head config owns no caches; its context is
    // empty rather than undefined.
    return gpuCaches_.empty() ? 0 : gpuCaches_.front()->size();
}

void
DecodePipeline::prefill(size_t n)
{
    // Each (layer, KV head) group owns its HeadWorkload (forked RNG)
    // and its KvCache, so groups generate independently.
    ThreadPool::global().parallelFor(
        0, workloads_.size(), [&](size_t idx) {
            LS_PARALLEL_BODY();
            HeadWorkload &wl = workloads_[idx];
            wl.generate(n);
            gpuCaches_[idx]->appendAll(wl.keys(), wl.values());
        });
    maybeTrainItq();
    flushEligibleGroups();
    advancePrefillAttention(false);
}

void
DecodePipeline::prefillChunk(size_t n)
{
    if (n == 0)
        return;
    if (contextLength() == 0) {
        prefill(n);
        return;
    }
    // Extend each (layer, KV head) context token by token: appendToken
    // advances the same RNG stream generate() would, so chunked and
    // monolithic prefill build identical contexts.
    ThreadPool::global().parallelFor(
        0, workloads_.size(), [&](size_t idx) {
            LS_PARALLEL_BODY();
            HeadWorkload &wl = workloads_[idx];
            for (size_t t = 0; t < n; ++t) {
                wl.appendToken();
                const size_t pos = wl.contextLength() - 1;
                gpuCaches_[idx]->append(wl.keys().row(pos),
                                        wl.values().row(pos));
            }
        });
    maybeTrainItq();
    flushEligibleGroups();
    advancePrefillAttention(false);
}

void
DecodePipeline::advancePrefillAttention(bool flush)
{
    if (!cfg_.prefillAttention || prefillFrozen_)
        return;
    // Parallel over (layer, KV head): each lane owns its head's whole
    // sparse prompt pass (nested parallel loops inside advance() run
    // serially), writing only its own output matrix.
    ThreadPool::global().parallelFor(
        0, workloads_.size(), [&](size_t idx) {
            LS_PARALLEL_BODY();
            HeadWorkload &wl = workloads_[idx];
            const size_t n = wl.keys().rows();
            Matrix &out = prefillOut_[idx];
            if (out.rows() < n) {
                // Grow preserving already-attended rows (Matrix::resize
                // discards); new rows are filled by advance() as their
                // Q-blocks complete.
                const std::vector<float> zero(cfg_.headDim, 0.0f);
                while (out.rows() < n)
                    out.appendRow(zero.data());
            }
            prefillAttn_[idx]->advance(wl.keys(), wl.keys(),
                                       wl.values(),
                                       wl.attentionScale(), n, flush,
                                       out);
        });
    if (flush)
        prefillFrozen_ = true;
}

void
DecodePipeline::flushPrefillAttention()
{
    advancePrefillAttention(true);
}

const Matrix &
DecodePipeline::prefillAttentionOutput(uint32_t layer,
                                       uint32_t kv_head) const
{
    LS_ASSERT(cfg_.prefillAttention, "prefillAttention is disabled");
    return prefillOut_[layer * cfg_.numKvHeads + kv_head];
}

const BlockSparsePrefill &
DecodePipeline::prefillAttentionHead(uint32_t layer,
                                     uint32_t kv_head) const
{
    LS_ASSERT(cfg_.prefillAttention, "prefillAttention is disabled");
    return *prefillAttn_[layer * cfg_.numKvHeads + kv_head];
}

PrefillStats
DecodePipeline::prefillAttentionStats() const
{
    PrefillStats total;
    for (const auto &head : prefillAttn_)
        total.merge(head->stats());
    return total;
}

void
DecodePipeline::maybeTrainItq()
{
    if (!cfg_.trainItq || itqInstalled_)
        return;
    const size_t n = contextLength();
    if (n < cfg_.headDim * 4)
        return; // not enough data yet
    // Training is per-group: each group rotates its own caches with a
    // seed derived only from (layer, head), so groups are independent.
    ThreadPool::global().parallelFor(
        0, workloads_.size(), [&](size_t idx) {
            LS_PARALLEL_BODY();
            const uint32_t l =
                static_cast<uint32_t>(idx) / cfg_.numKvHeads;
            const uint32_t h =
                static_cast<uint32_t>(idx) % cfg_.numKvHeads;
            KvCache &cache = gpuCache(l, h);
            const size_t nk = std::min<size_t>(n, 896);
            Matrix train(nk, cfg_.headDim);
            for (size_t i = 0; i < nk; ++i)
                train.setRow(i, cache.keyRow(i * n / nk));
            Rng rng(cfg_.seed ^ (l * 131 + h));
            Matrix rotation = trainItqRotation(train, 15, rng);
            cache.setItqRotation(rotation);
            if (device_.hasContext(uid_, l, h))
                device_.context(uid_, l, h).setItqRotation(rotation);
        });
    itqInstalled_ = true;
}

void
DecodePipeline::flushEligibleGroups()
{
    const size_t n = contextLength();
    // Tokens older than the window are eligible; ship them in whole
    // object groups so Key/Key-Sign/Value Objects stay aligned (§6).
    const size_t window = cfg_.hybrid.windowSize;
    const size_t eligible = n > window ? n - window : 0;
    const size_t target =
        eligible / cfg_.flushGranularity * cfg_.flushGranularity;
    if (target <= flushed_)
        return;

    // Groups ship disjoint (layer, head) contexts; writeContext
    // serializes only the store lookup, so the copies overlap.
    ThreadPool::global().parallelFor(
        0, workloads_.size(), [&](size_t idx) {
            LS_PARALLEL_BODY();
            const uint32_t l =
                static_cast<uint32_t>(idx) / cfg_.numKvHeads;
            const uint32_t h =
                static_cast<uint32_t>(idx) % cfg_.numKvHeads;
            const KvCache &src = gpuCache(l, h);
            const size_t count = target - flushed_;
            Matrix keys(count, cfg_.headDim);
            Matrix values(count, cfg_.headDim);
            for (size_t i = 0; i < count; ++i) {
                keys.setRow(i, src.keyRow(flushed_ + i));
                values.setRow(i, src.valueRow(flushed_ + i));
            }
            KvCache &dst = device_.writeContext(uid_, l, h, keys, values);
            if (src.hasItqRotation() && !dst.hasItqRotation())
                dst.setItqRotation(src.itqRotation());
        });
    flushed_ = target;
}

PipelineStepResult
DecodePipeline::decodeStep()
{
    LS_DETERMINISTIC();
    // The batch path with one request IS the single-request path; the
    // per-layer phases run in exactly the order the pre-batch step
    // did, so there is one implementation to keep correct. The
    // one-element batch and result vectors are members so the steady-
    // state step allocates nothing here.
    if (selfBatch_.empty())
        selfBatch_.push_back(this);
    decodeStepBatch(selfBatch_, selfResults_);
    return selfResults_.front();
}

GroupedScanStats
DecodePipeline::decodeStepBatch(const std::vector<DecodePipeline *> &batch,
                                std::vector<PipelineStepResult> &results)
{
    LS_DETERMINISTIC();
    GroupedScanStats stats;
    results.clear();
    results.resize(batch.size());
    if (batch.empty())
        return stats;
    stats.requests = batch.size();
    const PipelineConfig &shape = batch.front()->cfg_;
    for (const DecodePipeline *p : batch)
        LS_ASSERT(p->cfg_.numLayers == shape.numLayers &&
                      p->cfg_.numQueryHeads == shape.numQueryHeads &&
                      p->cfg_.numKvHeads == shape.numKvHeads &&
                      p->cfg_.headDim == shape.headDim,
                  "batched decode requires a uniform model shape");

    // The prompt ends where decode begins: settle any deferred
    // sparse-prefill tail BEFORE this step appends new tokens, so the
    // prompt pass never sees decode tokens (no-op when disabled or
    // already flushed).
    for (DecodePipeline *p : batch)
        p->flushPrefillAttention();

    // Phases 1-2 per request: token append and bulk flush only touch
    // the request's own state.
    for (size_t ri = 0; ri < batch.size(); ++ri)
        batch[ri]->stepAppendAndFlush(results[ri]);

    const size_t nreq = batch.size();
    std::vector<std::vector<AttentionResponse>> responses(nreq);
    std::vector<uint8_t> offloaded(nreq, 0);

    for (uint32_t l = 0; l < shape.numLayers; ++l) {
        // Phase 3 per request: draw the layer's grouped queries and
        // run the device offload (FIFO per request, as one request at
        // a time would).
        for (size_t ri = 0; ri < nreq; ++ri)
            offloaded[ri] = batch[ri]->stepOffloadLayer(
                                l, results[ri], responses[ri])
                ? 1
                : 0;

        // Phase 4, grouped across the batch: one work item per
        // (KV head, request), KV-head-major, so every request's
        // queries against the same (layer, KV head) are adjacent in
        // the dispatch order. Each item combines and verifies its
        // head's WHOLE query group with one grouped scan. Items write
        // disjoint per-request lane slots; verdicts fold serially per
        // request, so results are bit-identical for any thread count
        // and any batch composition.
        ThreadPool::global().parallelForEach(
            0, nreq * shape.numKvHeads, [&](size_t item) {
                // Annotated directly: thread-pool dispatch is opaque
                // to the call-graph walk, so the body is its own root.
                LS_PARALLEL_BODY();
                LS_HOT_PATH();
                LS_DETERMINISTIC();
                LS_NO_LOCK();
                const auto h = static_cast<uint32_t>(item / nreq);
                const size_t ri = item % nreq;
                batch[ri]->stepCombineHead(l, h, offloaded[ri] != 0,
                                           responses[ri]);
            });
        for (size_t ri = 0; ri < nreq; ++ri) {
            batch[ri]->stepFoldLayer(results[ri]);
            stats.groupedItems += shape.numKvHeads;
            if (offloaded[ri]) {
                stats.scanPasses += shape.numKvHeads;
                stats.ungroupedEquivalent += shape.numQueryHeads;
            }
        }
    }
    return stats;
}

void
DecodePipeline::stepAppendAndFlush(PipelineStepResult &result)
{
    // 1. New token: every (layer, head) appends one KV pair.
    ThreadPool::global().parallelForEach(
        0, workloads_.size(), [&](size_t idx) {
            LS_PARALLEL_BODY();
            LS_HOT_PATH();
            LS_DETERMINISTIC();
            HeadWorkload &wl = workloads_[idx];
            wl.appendToken();
            const size_t pos = wl.contextLength() - 1;
            gpuCaches_[idx]->append(wl.keys().row(pos),
                                    wl.values().row(pos));
        });

    // 2. Bulk updates off the critical path.
    const size_t before = flushed_;
    flushEligibleGroups();
    result.tokensFlushed = (flushed_ - before) * cfg_.numLayers *
        cfg_.numKvHeads;

    stepQueries_.resize(cfg_.numKvHeads);
    stepFilterQueries_.resize(cfg_.numKvHeads);
}

bool
DecodePipeline::stepOffloadLayer(uint32_t l, PipelineStepResult &result,
                                 std::vector<AttentionResponse> &responses)
{
    const size_t n = contextLength();
    const size_t sinks = std::min<size_t>(cfg_.hybrid.sinkTokens, n);

    // 3. Request: one offload per KV head, grouped GQA queries.
    std::vector<Matrix> &queries = stepQueries_;
    std::vector<Matrix> &filter_queries = stepFilterQueries_;
    AttentionRequest req;
    req.uid = uid_;
    req.layer = l;
    const bool offload = flushed_ > sinks;
    // Draw the layer's queries in parallel: each KV head advances
    // only its own workload RNG, so the streams are the same ones
    // a serial loop would produce.
    ThreadPool::global().parallelForEach(
        0, cfg_.numKvHeads, [&](size_t hi) {
            LS_PARALLEL_BODY();
            const auto h = static_cast<uint32_t>(hi);
            HeadWorkload &wl = workloads_[l * cfg_.numKvHeads + h];
            const KvCache &cache = gpuCache(l, h);
            queries[h].resize(group_, cfg_.headDim);
            filter_queries[h].resize(group_, cfg_.headDim);
            for (uint32_t g = 0; g < group_; ++g) {
                const auto q = wl.drawQuery();
                queries[h].setRow(g, q.data());
                cache.toFilterSpace(q.data(), filter_queries[h].row(g));
            }
        });
    for (uint32_t h = 0; h < cfg_.numKvHeads; ++h) {
        if (!offload)
            continue;
        OffloadSpec spec;
        spec.user = uid_;
        spec.layer = l;
        spec.kvHead = h;
        spec.sparseBegin = sinks;
        spec.sparseEnd = flushed_;
        spec.numQueries = group_;
        spec.k = cfg_.hybrid.topK;
        spec.threshold = cfg_.hybrid.defaultThreshold;
        spec.cache = &device_.context(uid_, l, h);
        spec.queries = &queries[h];
        spec.filterQueries = &filter_queries[h];
        req.headOffloads.push_back(spec);
    }

    responses.clear();
    if (offload) {
        device_.submit(std::move(req));
        responses = device_.processAll();
        ++result.offloadsIssued;
    }

    // Fresh lane verdicts for this layer's combine phase.
    const size_t lanes = static_cast<size_t>(cfg_.numKvHeads) * group_;
    laneMass_.assign(lanes, 1.0);
    laneMatched_.assign(lanes, 1);
    return offload;
}

void
DecodePipeline::stepCombineHead(
    uint32_t l, uint32_t h, bool offload,
    const std::vector<AttentionResponse> &responses)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    const size_t n = contextLength();
    const size_t sinks = std::min<size_t>(cfg_.hybrid.sinkTokens, n);
    const float scale =
        1.0f / std::sqrt(static_cast<float>(cfg_.headDim));
    const KvCache &cache = gpuCache(l, h);
    const Matrix &queries = stepQueries_[h];
    ScratchFrame frame(ScratchArena::forThisThread());

    // Verification A precompute, grouped: ONE scan over the offloaded
    // region [sinks, flushed_) serves the head's whole query group —
    // the sign rows and survivor key tiles stream through all group_
    // concordance tests and top-k heaps together, where the per-query
    // dispatch re-read them group_ times. Per query the expected
    // selection is bit-identical to the single-query kernel.
    ScoredIndex *expect = nullptr;
    size_t *expect_sizes = nullptr;
    size_t kcap = 0;
    if (offload) {
        const SignMatrix &signs = cache.filterSignsStorage();
        const size_t wpr = signs.wordsPerRow();
        uint64_t *qw = frame.alloc<uint64_t>(group_ * wpr);
        for (uint32_t g = 0; g < group_; ++g)
            packSigns(stepFilterQueries_[h].row(g), cfg_.headDim,
                      qw + g * wpr);
        kcap = std::min<size_t>(cfg_.hybrid.topK, flushed_ - sinks);
        expect = frame.alloc<ScoredIndex>(group_ * kcap);
        expect_sizes = frame.alloc<size_t>(group_);
        // Span-aware driver: the flat cache routes through the single
        // identity span, a paged cache through its block table, with
        // per-query selections element-identical either way. Survivor
        // totals per span feed the pool's SCF residency counters.
        ScanSpan *spans =
            frame.alloc<ScanSpan>(cache.maxSpans(sinks, flushed_));
        const size_t nspans = cache.collectSpans(sinks, flushed_, spans);
        size_t *span_surv = frame.alloc<size_t>(nspans);
        batchScoreSelectMultiSpans(qw, group_, signs, spans, nspans,
                                   cfg_.hybrid.defaultThreshold,
                                   queries.row(0), queries.cols(),
                                   cache.keysStorage(), scale,
                                   cfg_.hybrid.topK, expect, kcap,
                                   expect_sizes, nullptr, span_surv);
        if (cache.paged())
            for (size_t si = 0; si < nspans; ++si)
                cache.recordFilterScan(spans[si],
                                       uint64_t{group_} * spans[si].count,
                                       span_surv[si]);
    }

    // GPU-side combine + verification, per query of the group. Lane
    // buffers come from this thread's scratch arena, reclaimed per
    // query; verdicts land in this head's disjoint lane slots.
    for (uint32_t g = 0; g < group_; ++g) {
        const size_t lane = static_cast<size_t>(h) * group_ + g;
        ScratchFrame lane_frame(frame.arena());

        // Dense part: sinks, device top-k, and everything not yet
        // flushed (window plus staging buffer). The three sources
        // are disjoint ascending ranges — the top-k lives in
        // [sinks, flushed_) and the staged tail starts at
        // max(flushed_, sinks) — so concatenating them in order
        // replaces the old sort + unique.
        const size_t staged_begin = std::max(flushed_, sinks);
        uint32_t *attended = lane_frame.alloc<uint32_t>(
            sinks + (n - staged_begin) + cfg_.hybrid.topK);
        size_t na = 0;
        for (size_t i = 0; i < sinks; ++i)
            attended[na++] = static_cast<uint32_t>(i);

        uint32_t *hw_topk = nullptr;
        size_t n_hw = 0;
        if (offload) {
            const auto &head_result = responses[0].headResults[h];
            const auto &tk = head_result.topk[g];
            n_hw = tk.size();
            hw_topk = lane_frame.alloc<uint32_t>(n_hw);
            for (size_t i = 0; i < n_hw; ++i)
                hw_topk[i] = tk[i].index;
            std::sort(hw_topk, hw_topk + n_hw);
            for (size_t i = 0; i < n_hw; ++i)
                attended[na++] = hw_topk[i];
        }
        for (size_t i = staged_begin; i < n; ++i)
            attended[na++] = static_cast<uint32_t>(i);

        const float *q = queries.row(g);
        float *probs = lane_frame.alloc<float>(na);
        float *combined = lane_frame.alloc<float>(cfg_.headDim);
        subsetAttentionInto(q, cache, attended, na, scale, probs,
                            combined);
        (void)combined;

        // Verification A: device top-k equals the software filter ->
        // score -> rank selection precomputed by the grouped scan.
        if (offload) {
            const ScoredIndex *sel = expect + g * kcap;
            const size_t nsel = expect_sizes[g];
            bool matched = nsel == n_hw;
            if (matched) {
                uint32_t *sw = lane_frame.alloc<uint32_t>(nsel);
                for (size_t i = 0; i < nsel; ++i)
                    sw[i] = sel[i].index;
                std::sort(sw, sw + nsel);
                matched = std::equal(sw, sw + nsel, hw_topk);
            }
            if (!matched)
                laneMatched_[lane] = 0;
        }

        // Verification B: retained dense softmax mass.
        float *dense_probs = lane_frame.alloc<float>(n);
        float *dense_out = lane_frame.alloc<float>(cfg_.headDim);
        denseAttentionInto(q, cache, scale, dense_probs, dense_out);
        double mass = 0.0;
        for (size_t i = 0; i < na; ++i)
            mass += dense_probs[attended[i]];
        laneMass_[lane] = mass;
    }
}

void
DecodePipeline::stepFoldLayer(PipelineStepResult &result)
{
    const size_t lanes = static_cast<size_t>(cfg_.numKvHeads) * group_;
    for (size_t lane = 0; lane < lanes; ++lane) {
        result.minRetainedMass =
            std::min(result.minRetainedMass, laneMass_[lane]);
        if (!laneMatched_[lane])
            result.deviceMatchedSoftware = false;
    }
}

} // namespace longsight

#include "sim/decode_pipeline.hh"

#include <algorithm>
#include <cmath>

#include "core/attention.hh"
#include "core/itq.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "tensor/kernels.hh"
#include "util/logging.hh"
#include "util/scratch_arena.hh"
#include "util/thread_pool.hh"

namespace longsight {

DecodePipeline::DecodePipeline(const PipelineConfig &cfg, DrexDevice &device,
                               uint32_t uid)
    : cfg_(cfg), device_(device), uid_(uid)
{
    LS_ASSERT(cfg.numQueryHeads % cfg.numKvHeads == 0,
              "GQA requires query heads % KV heads == 0");
    LS_ASSERT(device.config().headDim == cfg.headDim,
              "device head dim mismatch");
    WorkloadConfig wcfg;
    wcfg.headDim = cfg_.headDim;
    Rng root(cfg_.seed);
    for (uint32_t l = 0; l < cfg_.numLayers; ++l) {
        for (uint32_t h = 0; h < cfg_.numKvHeads; ++h) {
            workloads_.emplace_back(wcfg, root.fork());
            gpuCaches_.push_back(std::make_unique<KvCache>(cfg_.headDim));
        }
    }
}

KvCache &
DecodePipeline::gpuCache(uint32_t layer, uint32_t head)
{
    return *gpuCaches_[layer * cfg_.numKvHeads + head];
}

size_t
DecodePipeline::contextLength() const
{
    // A zero-layer or zero-head config owns no caches; its context is
    // empty rather than undefined.
    return gpuCaches_.empty() ? 0 : gpuCaches_.front()->size();
}

void
DecodePipeline::prefill(size_t n)
{
    // Each (layer, KV head) group owns its HeadWorkload (forked RNG)
    // and its KvCache, so groups generate independently.
    ThreadPool::global().parallelFor(
        0, workloads_.size(), [&](size_t idx) {
            HeadWorkload &wl = workloads_[idx];
            wl.generate(n);
            gpuCaches_[idx]->appendAll(wl.keys(), wl.values());
        });
    maybeTrainItq();
    flushEligibleGroups();
}

void
DecodePipeline::maybeTrainItq()
{
    if (!cfg_.trainItq || itqInstalled_)
        return;
    const size_t n = contextLength();
    if (n < cfg_.headDim * 4)
        return; // not enough data yet
    // Training is per-group: each group rotates its own caches with a
    // seed derived only from (layer, head), so groups are independent.
    ThreadPool::global().parallelFor(
        0, workloads_.size(), [&](size_t idx) {
            const uint32_t l =
                static_cast<uint32_t>(idx) / cfg_.numKvHeads;
            const uint32_t h =
                static_cast<uint32_t>(idx) % cfg_.numKvHeads;
            KvCache &cache = gpuCache(l, h);
            const size_t nk = std::min<size_t>(n, 896);
            Matrix train(nk, cfg_.headDim);
            for (size_t i = 0; i < nk; ++i)
                train.setRow(i, cache.keys().row(i * n / nk));
            Rng rng(cfg_.seed ^ (l * 131 + h));
            Matrix rotation = trainItqRotation(train, 15, rng);
            cache.setItqRotation(rotation);
            if (device_.hasContext(uid_, l, h))
                device_.context(uid_, l, h).setItqRotation(rotation);
        });
    itqInstalled_ = true;
}

void
DecodePipeline::flushEligibleGroups()
{
    const size_t n = contextLength();
    // Tokens older than the window are eligible; ship them in whole
    // object groups so Key/Key-Sign/Value Objects stay aligned (§6).
    const size_t window = cfg_.hybrid.windowSize;
    const size_t eligible = n > window ? n - window : 0;
    const size_t target =
        eligible / cfg_.flushGranularity * cfg_.flushGranularity;
    if (target <= flushed_)
        return;

    // Groups ship disjoint (layer, head) contexts; writeContext
    // serializes only the store lookup, so the copies overlap.
    ThreadPool::global().parallelFor(
        0, workloads_.size(), [&](size_t idx) {
            const uint32_t l =
                static_cast<uint32_t>(idx) / cfg_.numKvHeads;
            const uint32_t h =
                static_cast<uint32_t>(idx) % cfg_.numKvHeads;
            const KvCache &src = gpuCache(l, h);
            const size_t count = target - flushed_;
            Matrix keys(count, cfg_.headDim);
            Matrix values(count, cfg_.headDim);
            for (size_t i = 0; i < count; ++i) {
                keys.setRow(i, src.keys().row(flushed_ + i));
                values.setRow(i, src.values().row(flushed_ + i));
            }
            KvCache &dst = device_.writeContext(uid_, l, h, keys, values);
            if (src.hasItqRotation() && !dst.hasItqRotation())
                dst.setItqRotation(src.itqRotation());
        });
    flushed_ = target;
}

PipelineStepResult
DecodePipeline::decodeStep()
{
    PipelineStepResult result;

    // 1. New token: every (layer, head) appends one KV pair.
    ThreadPool::global().parallelForEach(
        0, workloads_.size(), [&](size_t idx) {
            HeadWorkload &wl = workloads_[idx];
            wl.appendToken();
            const size_t pos = wl.contextLength() - 1;
            gpuCaches_[idx]->append(wl.keys().row(pos),
                                    wl.values().row(pos));
        });

    // 2. Bulk updates off the critical path.
    const size_t before = flushed_;
    flushEligibleGroups();
    result.tokensFlushed = (flushed_ - before) * cfg_.numLayers *
        cfg_.numKvHeads;

    const size_t n = contextLength();
    const size_t sinks = std::min<size_t>(cfg_.hybrid.sinkTokens, n);
    const uint32_t group = cfg_.numQueryHeads / cfg_.numKvHeads;
    const float scale =
        1.0f / std::sqrt(static_cast<float>(cfg_.headDim));

    stepQueries_.resize(cfg_.numKvHeads);
    stepFilterQueries_.resize(cfg_.numKvHeads);

    for (uint32_t l = 0; l < cfg_.numLayers; ++l) {
        // 3. Request: one offload per KV head, grouped GQA queries.
        std::vector<Matrix> &queries = stepQueries_;
        std::vector<Matrix> &filter_queries = stepFilterQueries_;
        AttentionRequest req;
        req.uid = uid_;
        req.layer = l;
        const bool offload = flushed_ > sinks;
        // Draw the layer's queries in parallel: each KV head advances
        // only its own workload RNG, so the streams are the same ones
        // a serial loop would produce.
        ThreadPool::global().parallelForEach(
            0, cfg_.numKvHeads, [&](size_t hi) {
                const auto h = static_cast<uint32_t>(hi);
                HeadWorkload &wl = workloads_[l * cfg_.numKvHeads + h];
                const KvCache &cache = gpuCache(l, h);
                queries[h].resize(group, cfg_.headDim);
                filter_queries[h].resize(group, cfg_.headDim);
                for (uint32_t g = 0; g < group; ++g) {
                    const auto q = wl.drawQuery();
                    queries[h].setRow(g, q.data());
                    cache.toFilterSpace(q.data(), filter_queries[h].row(g));
                }
            });
        for (uint32_t h = 0; h < cfg_.numKvHeads; ++h) {
            if (!offload)
                continue;
            OffloadSpec spec;
            spec.user = uid_;
            spec.layer = l;
            spec.kvHead = h;
            spec.sparseBegin = sinks;
            spec.sparseEnd = flushed_;
            spec.numQueries = group;
            spec.k = cfg_.hybrid.topK;
            spec.threshold = cfg_.hybrid.defaultThreshold;
            spec.cache = &device_.context(uid_, l, h);
            spec.queries = &queries[h];
            spec.filterQueries = &filter_queries[h];
            req.headOffloads.push_back(spec);
        }

        std::vector<AttentionResponse> responses;
        if (offload) {
            device_.submit(std::move(req));
            responses = device_.processAll();
            ++result.offloadsIssued;
        }

        // 4. GPU-side combine + verification per query head. Lanes
        // (one per query) only read shared state; their verdicts land
        // in per-lane slots and fold into the step result with
        // order-independent reductions (min / logical and). All lane
        // buffers come from the lane's scratch arena, so the steady
        // state performs no heap allocation here.
        const size_t lanes =
            static_cast<size_t>(cfg_.numKvHeads) * group;
        laneMass_.assign(lanes, 1.0);
        laneMatched_.assign(lanes, 1);
        ThreadPool::global().parallelForEach(0, lanes, [&](size_t lane) {
            const auto h = static_cast<uint32_t>(lane / group);
            const auto g = static_cast<uint32_t>(lane % group);
            const KvCache &cache = gpuCache(l, h);
            ScratchFrame frame(ScratchArena::forThisThread());

            // Dense part: sinks, device top-k, and everything not yet
            // flushed (window plus staging buffer). The three sources
            // are disjoint ascending ranges — the top-k lives in
            // [sinks, flushed_) and the staged tail starts at
            // max(flushed_, sinks) — so concatenating them in order
            // replaces the old sort + unique.
            const size_t staged_begin = std::max(flushed_, sinks);
            uint32_t *attended = frame.alloc<uint32_t>(
                sinks + (n - staged_begin) + cfg_.hybrid.topK);
            size_t na = 0;
            for (size_t i = 0; i < sinks; ++i)
                attended[na++] = static_cast<uint32_t>(i);

            uint32_t *hw_topk = nullptr;
            size_t n_hw = 0;
            if (offload) {
                const auto &head_result = responses[0].headResults[h];
                const auto &tk = head_result.topk[g];
                n_hw = tk.size();
                hw_topk = frame.alloc<uint32_t>(n_hw);
                for (size_t i = 0; i < n_hw; ++i)
                    hw_topk[i] = tk[i].index;
                std::sort(hw_topk, hw_topk + n_hw);
                for (size_t i = 0; i < n_hw; ++i)
                    attended[na++] = hw_topk[i];
            }
            for (size_t i = staged_begin; i < n; ++i)
                attended[na++] = static_cast<uint32_t>(i);

            const float *q = queries[h].row(g);
            float *probs = frame.alloc<float>(na);
            float *combined = frame.alloc<float>(cfg_.headDim);
            subsetAttentionInto(q, cache.keys(), cache.values(),
                                attended, na, scale, probs, combined);
            (void)combined;

            // Verification A: device top-k equals the software
            // filter -> score -> rank over the same region, run here
            // through the fused scan -> score -> select kernel.
            if (offload) {
                float *qf = frame.alloc<float>(cfg_.headDim);
                cache.toFilterSpace(q, qf);
                const SignMatrix &signs = cache.filterSignsAll();
                uint64_t *qw =
                    frame.alloc<uint64_t>(signs.wordsPerRow());
                packSigns(qf, cfg_.headDim, qw);
                const size_t kcap = std::min<size_t>(
                    cfg_.hybrid.topK, flushed_ - sinks);
                ScoredIndex *expect = frame.alloc<ScoredIndex>(kcap);
                const size_t nsel = batchScoreSelect(
                    qw, signs, sinks, flushed_,
                    cfg_.hybrid.defaultThreshold, q, cache.keys(),
                    scale, cfg_.hybrid.topK, expect);
                bool matched = nsel == n_hw;
                if (matched) {
                    uint32_t *sw = frame.alloc<uint32_t>(nsel);
                    for (size_t i = 0; i < nsel; ++i)
                        sw[i] = expect[i].index;
                    std::sort(sw, sw + nsel);
                    matched = std::equal(sw, sw + nsel, hw_topk);
                }
                if (!matched)
                    laneMatched_[lane] = 0;
            }

            // Verification B: retained dense softmax mass.
            float *dense_probs = frame.alloc<float>(n);
            float *dense_out = frame.alloc<float>(cfg_.headDim);
            denseAttentionInto(q, cache.keys(), cache.values(), scale,
                               dense_probs, dense_out);
            double mass = 0.0;
            for (size_t i = 0; i < na; ++i)
                mass += dense_probs[attended[i]];
            laneMass_[lane] = mass;
        });
        for (size_t lane = 0; lane < lanes; ++lane) {
            result.minRetainedMass =
                std::min(result.minRetainedMass, laneMass_[lane]);
            if (!laneMatched_[lane])
                result.deviceMatchedSoftware = false;
        }
    }
    return result;
}

} // namespace longsight

#include "drex/nma.hh"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "util/logging.hh"

namespace longsight {

Nma::Nma(const NmaConfig &cfg, const DataLayout &layout,
         DramPackage &package)
    : cfg_(cfg), layout_(layout), package_(package)
{
    LS_ASSERT(cfg.maxTopK > 0 && cfg.maxTopK <= 1024,
              "hardware top-k must be in (0, 1024]");
}

std::vector<uint32_t>
Nma::filterEpochFunctional(const OffloadSpec &spec,
                           const std::vector<SignBits> &query_signs,
                           uint64_t epoch_begin, uint64_t epoch_end,
                           std::vector<std::vector<uint32_t>> &per_query)
    const
{
    const auto &signs = spec.cache->filterSignsAll();
    std::vector<uint32_t> union_survivors;
    per_query.assign(query_signs.size(), {});

    // Blocks are 128-key aligned in the slice; filter whole blocks and
    // mask tokens outside the requested range.
    const uint64_t block = DataLayout::kKeysPerBlock;
    const uint64_t first_block = epoch_begin / block;
    const uint64_t last_block = (epoch_end + block - 1) / block;
    for (uint64_t b = first_block; b < last_block; ++b) {
        const uint64_t tok_begin = b * block;
        const uint64_t tok_end =
            std::min<uint64_t>(tok_begin + block, spec.cache->size());
        const uint32_t num_keys = static_cast<uint32_t>(tok_end - tok_begin);
        if (num_keys == 0)
            continue;
        const auto bitmaps = Pfu::filterBlock(
            query_signs, signs, tok_begin, num_keys, spec.threshold);
        for (uint32_t i = 0; i < num_keys; ++i) {
            const uint32_t tok = static_cast<uint32_t>(tok_begin) + i;
            if (tok < epoch_begin || tok >= epoch_end)
                continue;
            bool any = false;
            for (size_t q = 0; q < bitmaps.size(); ++q) {
                if (bitmaps[q].test(i)) {
                    per_query[q].push_back(tok);
                    any = true;
                }
            }
            if (any)
                union_survivors.push_back(tok);
        }
    }
    return union_survivors;
}

uint64_t
Nma::survivorsModelled(const OffloadSpec &spec, uint64_t epoch_tokens) const
{
    return static_cast<uint64_t>(
        std::llround(spec.survivorFraction *
                     static_cast<double>(epoch_tokens)));
}

OffloadResult
Nma::process(Tick start, const OffloadSpec &spec)
{
    LS_ASSERT(spec.sparseEnd >= spec.sparseBegin, "inverted sparse region");
    LS_ASSERT(spec.numQueries >= 1 && spec.numQueries <= Pfu::kMaxQueries,
              "query group size out of PFU range");
    const bool functional = spec.cache != nullptr;
    if (functional) {
        LS_ASSERT(spec.queries && spec.filterQueries,
                  "functional offload needs query matrices");
        LS_ASSERT(spec.sparseEnd <= spec.cache->size(),
                  "sparse region beyond cache");
    }

    OffloadResult r;
    r.startTick = std::max(start, busyUntil_);
    r.regionTokens = spec.sparseEnd - spec.sparseBegin;

    const uint32_t d = layout_.headDim();
    const uint32_t k = std::min(spec.k, cfg_.maxTopK);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    // Pack query sign bits once (done by the DCC when staging the
    // request; cost is negligible next to addrGen).
    std::vector<SignBits> query_signs;
    if (functional) {
        for (uint32_t q = 0; q < spec.numQueries; ++q)
            query_signs.emplace_back(spec.filterQueries->row(q), d);
    }

    std::vector<TopK> rankers;
    for (uint32_t q = 0; q < spec.numQueries; ++q)
        rankers.emplace_back(k);

    // Epoch span: every bank filters one 128-key block per epoch, so
    // one epoch covers up to banks x 128 tokens of the slice.
    const uint64_t epoch_span =
        static_cast<uint64_t>(layout_.geometry().banksPerChannel) *
        layout_.keysPerGroup();

    Tick t = r.startTick;
    const Tick per_key_dot = static_cast<Tick>(
        2.0 * d * spec.numQueries / cfg_.dotProductFlops * 1e12);

    uint64_t pos = spec.sparseBegin;
    while (pos < spec.sparseEnd) {
        const uint64_t epoch_end =
            std::min(spec.sparseEnd,
                     (pos / epoch_span + 1) * epoch_span);
        const uint64_t epoch_tokens = epoch_end - pos;
        ++r.epochs;

        // Address generation for the epoch's PFU launch.
        t += cfg_.addrGenOverhead;
        r.timing.addrGen += cfg_.addrGenOverhead;

        // In-bank filtering, all banks in parallel.
        const Tick t_filter = Pfu::bitmapGenTime(d, spec.numQueries);
        t += t_filter;
        r.timing.filter += t_filter;

        // Bitmap readout: 16 B per bank per query; banks stream over
        // their channel back to back after one access latency.
        const uint32_t groups = static_cast<uint32_t>(
            (epoch_tokens + layout_.keysPerGroup() - 1) /
            layout_.keysPerGroup());
        const Tick t_bitmap = cfg_.bitmapReadLatency +
            groups * spec.numQueries *
                package_.channel(0).timings().tBurst;
        t += t_bitmap;
        r.timing.bitmapRead += t_bitmap;

        // Survivors of this epoch.
        std::vector<uint32_t> survivors;
        std::vector<std::vector<uint32_t>> per_query_survivors;
        uint64_t survivor_count;
        if (functional) {
            survivors = filterEpochFunctional(spec, query_signs, pos,
                                              epoch_end,
                                              per_query_survivors);
            survivor_count = survivors.size();
        } else {
            survivor_count = survivorsModelled(spec, epoch_tokens);
        }
        r.survivors += survivor_count;

        // Scoring: fetch each survivor's full-precision key, striped
        // across the package's channels, and dot-product against the
        // query group. Compute pipelines behind memory; the phase ends
        // when the slower of the two finishes.
        const uint32_t fetch_bytes = spec.quantizedScoring
            ? d + 4 // INT8 payload + per-key scale
            : layout_.keyBytes();
        Tick mem_done = t;
        if (functional) {
            LS_ASSERT(!spec.quantizedScoring ||
                          spec.cache->keysQuantized(),
                      "quantized scoring needs a quantized Key Object");
            // Union survivors drive memory traffic; each query ranks
            // only the keys its own bitmap kept.
            for (uint32_t tok : survivors) {
                const TokenPlace p = layout_.place(
                    spec.user, spec.layer, spec.kvHead, tok);
                mem_done = package_.readStriped(t, p.bank, p.keyRow,
                                                fetch_bytes);
            }
            for (uint32_t q = 0; q < spec.numQueries; ++q) {
                const auto &kept = per_query_survivors[q];
                if (spec.quantizedScoring) {
                    for (uint32_t tok : kept)
                        rankers[q].push(
                            spec.cache->scoreKey(spec.queries->row(q),
                                                 tok) * scale,
                            tok);
                } else {
                    // Batched survivor scoring (vectorized fused
                    // dot+scale; bit-identical to the scalar dot).
                    std::vector<float> s(kept.size());
                    batchDotScaleAt(spec.queries->row(q),
                                    spec.cache->keys(), kept.data(),
                                    kept.size(), scale, s.data());
                    for (size_t j = 0; j < kept.size(); ++j)
                        rankers[q].push(s[j], kept[j]);
                }
            }
        } else {
            // Timing-only: survivors are spread uniformly over the
            // epoch's groups; issue representative striped reads.
            for (uint64_t i = 0; i < survivor_count; ++i) {
                const uint64_t tok = pos +
                    i * epoch_tokens / std::max<uint64_t>(survivor_count, 1);
                const TokenPlace p = layout_.place(
                    spec.user, spec.layer, spec.kvHead, tok);
                mem_done = package_.readStriped(t, p.bank, p.keyRow,
                                                fetch_bytes);
            }
        }
        const Tick compute_done = t + survivor_count * per_key_dot;
        const Tick score_end = std::max(mem_done, compute_done);
        r.timing.score += score_end - t;
        t = score_end;

        // Ranking: pipelined top-k insertion.
        const Tick t_rank = survivor_count * cfg_.topkInsertTime;
        t += t_rank;
        r.timing.rank += t_rank;

        pos = epoch_end;
    }

    // Collect selections and read the corresponding value vectors.
    if (functional) {
        for (uint32_t q = 0; q < spec.numQueries; ++q)
            r.topk.push_back(rankers[q].sortedResults());
        for (const auto &list : r.topk)
            for (const auto &e : list)
                r.valueTokens.push_back(e.index);
        std::sort(r.valueTokens.begin(), r.valueTokens.end());
        r.valueTokens.erase(
            std::unique(r.valueTokens.begin(), r.valueTokens.end()),
            r.valueTokens.end());
    }

    const uint64_t value_count = functional
        ? r.valueTokens.size()
        : std::min<uint64_t>(k, r.survivors);
    Tick value_done = t;
    for (uint64_t i = 0; i < value_count; ++i) {
        const uint64_t tok = functional
            ? r.valueTokens[i]
            : spec.sparseBegin +
                i * std::max<uint64_t>(r.regionTokens, 1) /
                    std::max<uint64_t>(value_count, 1);
        const TokenPlace p =
            layout_.place(spec.user, spec.layer, spec.kvHead,
                          std::min<uint64_t>(tok, spec.sparseEnd - 1));
        value_done = package_.readStriped(t, p.bank, p.valueRow,
                                          layout_.keyBytes());
    }
    r.timing.valueRead = value_done - t;
    t = value_done;

    // Score payload (4 B per retained score per query) + values.
    // Quantized Value Objects halve the CXL payload per value (the
    // short-context bottleneck); DRAM-side fetches above saw no gain
    // because scattered survivors pay full burst granularity anyway.
    const uint64_t value_payload = spec.quantizedScoring
        ? layout_.headDim() + 4
        : layout_.keyBytes();
    r.valueBytes = value_count * value_payload +
        4ULL * k * spec.numQueries;

    r.doneTick = t;
    busyUntil_ = t;
    return r;
}

} // namespace longsight

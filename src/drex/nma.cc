#include "drex/nma.hh"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "util/annotations.hh"
#include "util/logging.hh"
#include "util/scratch_arena.hh"

namespace longsight {

Nma::Nma(const NmaConfig &cfg, const DataLayout &layout,
         DramPackage &package)
    : cfg_(cfg), layout_(layout), package_(package)
{
    LS_ASSERT(cfg.maxTopK > 0 && cfg.maxTopK <= 1024,
              "hardware top-k must be in (0, 1024]");
}

size_t
Nma::filterEpochFunctional(const OffloadSpec &spec,
                           const uint64_t *query_words,
                           size_t words_per_query, uint64_t epoch_begin,
                           uint64_t epoch_end, uint32_t *union_survivors,
                           uint32_t *per_query, size_t stride,
                           size_t *per_query_counts) const
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    const auto &signs = spec.cache->filterSignsAll();
    const uint32_t nq = spec.numQueries;
    for (uint32_t q = 0; q < nq; ++q)
        per_query_counts[q] = 0;
    size_t union_count = 0;

    // One bitmap per query of the group, refilled per block.
    Bitmap128 bitmaps[Pfu::kMaxQueries];

    // Blocks are 128-key aligned in the slice; filter whole blocks and
    // mask tokens outside the requested range.
    const uint64_t block = DataLayout::kKeysPerBlock;
    const uint64_t first_block = epoch_begin / block;
    const uint64_t last_block = (epoch_end + block - 1) / block;
    for (uint64_t b = first_block; b < last_block; ++b) {
        const uint64_t tok_begin = b * block;
        const uint64_t tok_end =
            std::min<uint64_t>(tok_begin + block, spec.cache->size());
        const uint32_t num_keys = static_cast<uint32_t>(tok_end - tok_begin);
        if (num_keys == 0)
            continue;
        Pfu::filterBlock(query_words, words_per_query, nq, signs,
                         tok_begin, num_keys, spec.threshold, bitmaps);
        for (uint32_t i = 0; i < num_keys; ++i) {
            const uint32_t tok = static_cast<uint32_t>(tok_begin) + i;
            if (tok < epoch_begin || tok >= epoch_end)
                continue;
            bool any = false;
            for (uint32_t q = 0; q < nq; ++q) {
                if (bitmaps[q].test(i)) {
                    per_query[q * stride + per_query_counts[q]++] = tok;
                    any = true;
                }
            }
            if (any)
                union_survivors[union_count++] = tok;
        }
    }
    return union_count;
}

uint64_t
Nma::survivorsModelled(const OffloadSpec &spec, uint64_t epoch_tokens) const
{
    return static_cast<uint64_t>(
        std::llround(spec.survivorFraction *
                     static_cast<double>(epoch_tokens)));
}

OffloadResult
Nma::process(Tick start, const OffloadSpec &spec)
{
    LS_DETERMINISTIC();
    LS_ASSERT(spec.sparseEnd >= spec.sparseBegin, "inverted sparse region");
    LS_ASSERT(spec.numQueries >= 1 && spec.numQueries <= Pfu::kMaxQueries,
              "query group size out of PFU range");
    const bool functional = spec.cache != nullptr;
    if (functional) {
        LS_ASSERT(spec.queries && spec.filterQueries,
                  "functional offload needs query matrices");
        LS_ASSERT(spec.sparseEnd <= spec.cache->size(),
                  "sparse region beyond cache");
    }

    OffloadResult r;
    r.startTick = std::max(start, busyUntil_);
    r.regionTokens = spec.sparseEnd - spec.sparseBegin;

    const uint32_t d = layout_.headDim();
    const uint32_t k = std::min(spec.k, cfg_.maxTopK);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    // Offload-lifetime scratch: packed query signs, per-query top-k
    // heaps. Everything here is bump-allocated and reclaimed when the
    // frame dies, so repeated offloads are heap-allocation-free in the
    // filter/score/rank stages (the response payload in OffloadResult
    // still uses ordinary vectors).
    ScratchFrame frame(ScratchArena::forThisThread());

    // Pack query sign bits once (done by the DCC when staging the
    // request; cost is negligible next to addrGen).
    const size_t wpq = (d + 63) / 64;
    uint64_t *query_words = nullptr;
    if (functional) {
        query_words = frame.alloc<uint64_t>(spec.numQueries * wpq);
        for (uint32_t q = 0; q < spec.numQueries; ++q)
            packSigns(spec.filterQueries->row(q), d,
                      query_words + q * wpq);
    }

    // Bounded per-query rankers on scratch storage, driven by the same
    // topk_heap primitives as TopK (identical ordering by construction).
    ScoredIndex *heaps = frame.alloc<ScoredIndex>(
        static_cast<size_t>(spec.numQueries) * k);
    size_t *heap_sizes = frame.alloc<size_t>(spec.numQueries);
    for (uint32_t q = 0; q < spec.numQueries; ++q)
        heap_sizes[q] = 0;

    // Epoch span: every bank filters one 128-key block per epoch, so
    // one epoch covers up to banks x 128 tokens of the slice.
    const uint64_t epoch_span =
        static_cast<uint64_t>(layout_.geometry().banksPerChannel) *
        layout_.keysPerGroup();

    Tick t = r.startTick;
    const Tick per_key_dot = static_cast<Tick>(
        2.0 * d * spec.numQueries / cfg_.dotProductFlops * 1e12);

    uint64_t pos = spec.sparseBegin;
    while (pos < spec.sparseEnd) {
        const uint64_t epoch_end =
            std::min(spec.sparseEnd,
                     (pos / epoch_span + 1) * epoch_span);
        const uint64_t epoch_tokens = epoch_end - pos;
        ++r.epochs;

        // Address generation for the epoch's PFU launch.
        t += cfg_.addrGenOverhead;
        r.timing.addrGen += cfg_.addrGenOverhead;

        // In-bank filtering, all banks in parallel.
        const Tick t_filter = Pfu::bitmapGenTime(d, spec.numQueries);
        t += t_filter;
        r.timing.filter += t_filter;

        // Bitmap readout: 16 B per bank per query; banks stream over
        // their channel back to back after one access latency.
        const uint32_t groups = static_cast<uint32_t>(
            (epoch_tokens + layout_.keysPerGroup() - 1) /
            layout_.keysPerGroup());
        const Tick t_bitmap = cfg_.bitmapReadLatency +
            groups * spec.numQueries *
                package_.channel(0).timings().tBurst;
        t += t_bitmap;
        r.timing.bitmapRead += t_bitmap;

        // Survivors of this epoch, in epoch-lifetime scratch (rewound
        // at the end of each loop iteration).
        ScratchFrame epoch_frame(frame.arena());
        uint32_t *survivors = nullptr;
        uint32_t *per_query = nullptr;
        size_t *per_query_counts = nullptr;
        uint64_t survivor_count;
        if (functional) {
            survivors = epoch_frame.alloc<uint32_t>(epoch_tokens);
            per_query = epoch_frame.alloc<uint32_t>(
                static_cast<size_t>(spec.numQueries) * epoch_tokens);
            per_query_counts =
                epoch_frame.alloc<size_t>(spec.numQueries);
            survivor_count = filterEpochFunctional(
                spec, query_words, wpq, pos, epoch_end, survivors,
                per_query, epoch_tokens, per_query_counts);
        } else {
            survivor_count = survivorsModelled(spec, epoch_tokens);
        }
        r.survivors += survivor_count;

        // Scoring: fetch each survivor's full-precision key, striped
        // across the package's channels, and dot-product against the
        // query group. Compute pipelines behind memory; the phase ends
        // when the slower of the two finishes.
        const uint32_t fetch_bytes = spec.quantizedScoring
            ? d + 4 // INT8 payload + per-key scale
            : layout_.keyBytes();
        Tick mem_done = t;
        if (functional) {
            LS_ASSERT(!spec.quantizedScoring ||
                          spec.cache->keysQuantized(),
                      "quantized scoring needs a quantized Key Object");
            // Union survivors drive memory traffic; each query ranks
            // only the keys its own bitmap kept.
            for (size_t i = 0; i < survivor_count; ++i) {
                const TokenPlace p = layout_.place(
                    spec.user, spec.layer, spec.kvHead, survivors[i]);
                mem_done = package_.readStriped(t, p.bank, p.keyRow,
                                                fetch_bytes);
            }
            for (uint32_t q = 0; q < spec.numQueries; ++q) {
                const uint32_t *kept = per_query + q * epoch_tokens;
                const size_t kept_n = per_query_counts[q];
                ScoredIndex *heap = heaps + static_cast<size_t>(q) * k;
                size_t &hs = heap_sizes[q];
                if (spec.quantizedScoring) {
                    for (size_t j = 0; j < kept_n; ++j) {
                        const float s =
                            spec.cache->scoreKey(spec.queries->row(q),
                                                 kept[j]) * scale;
                        hs = topk_heap::push(heap, hs, k,
                                             ScoredIndex{s, kept[j]});
                    }
                } else {
                    // Batched survivor scoring (vectorized fused
                    // dot+scale; bit-identical to the scalar dot),
                    // scores in epoch scratch.
                    float *s = epoch_frame.alloc<float>(kept_n);
                    batchDotScaleAt(spec.queries->row(q),
                                    spec.cache->keys(), kept, kept_n,
                                    scale, s);
                    for (size_t j = 0; j < kept_n; ++j)
                        hs = topk_heap::push(heap, hs, k,
                                             ScoredIndex{s[j], kept[j]});
                }
            }
        } else {
            // Timing-only: survivors are spread uniformly over the
            // epoch's groups; issue representative striped reads.
            for (uint64_t i = 0; i < survivor_count; ++i) {
                const uint64_t tok = pos +
                    i * epoch_tokens / std::max<uint64_t>(survivor_count, 1);
                const TokenPlace p = layout_.place(
                    spec.user, spec.layer, spec.kvHead, tok);
                mem_done = package_.readStriped(t, p.bank, p.keyRow,
                                                fetch_bytes);
            }
        }
        const Tick compute_done = t + survivor_count * per_key_dot;
        const Tick score_end = std::max(mem_done, compute_done);
        r.timing.score += score_end - t;
        t = score_end;

        // Ranking: pipelined top-k insertion.
        const Tick t_rank = survivor_count * cfg_.topkInsertTime;
        t += t_rank;
        r.timing.rank += t_rank;

        pos = epoch_end;
    }

    // Collect selections (in-place heapsort, then copy into the
    // response payload) and read the corresponding value vectors.
    if (functional) {
        for (uint32_t q = 0; q < spec.numQueries; ++q) {
            ScoredIndex *heap = heaps + static_cast<size_t>(q) * k;
            topk_heap::sortBestFirst(heap, heap_sizes[q]);
            r.topk.emplace_back(heap, heap + heap_sizes[q]);
        }
        for (const auto &list : r.topk)
            for (const auto &e : list)
                r.valueTokens.push_back(e.index);
        std::sort(r.valueTokens.begin(), r.valueTokens.end());
        r.valueTokens.erase(
            std::unique(r.valueTokens.begin(), r.valueTokens.end()),
            r.valueTokens.end());
    }

    const uint64_t value_count = functional
        ? r.valueTokens.size()
        : std::min<uint64_t>(k, r.survivors);
    Tick value_done = t;
    for (uint64_t i = 0; i < value_count; ++i) {
        const uint64_t tok = functional
            ? r.valueTokens[i]
            : spec.sparseBegin +
                i * std::max<uint64_t>(r.regionTokens, 1) /
                    std::max<uint64_t>(value_count, 1);
        const TokenPlace p =
            layout_.place(spec.user, spec.layer, spec.kvHead,
                          std::min<uint64_t>(tok, spec.sparseEnd - 1));
        value_done = package_.readStriped(t, p.bank, p.valueRow,
                                          layout_.keyBytes());
    }
    r.timing.valueRead = value_done - t;
    t = value_done;

    // Score payload (4 B per retained score per query) + values.
    // Quantized Value Objects halve the CXL payload per value (the
    // short-context bottleneck); DRAM-side fetches above saw no gain
    // because scattered survivors pay full burst granularity anyway.
    const uint64_t value_payload = spec.quantizedScoring
        ? layout_.headDim() + 4
        : layout_.keyBytes();
    r.valueBytes = value_count * value_payload +
        4ULL * k * spec.numQueries;

    r.doneTick = t;
    busyUntil_ = t;
    return r;
}

} // namespace longsight

#include "drex/dcc.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace longsight {

void
PollingRegister::set(uint32_t bit)
{
    LS_ASSERT(bit < kBits, "polling bit out of range");
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
}

void
PollingRegister::clear(uint32_t bit)
{
    LS_ASSERT(bit < kBits, "polling bit out of range");
    words_[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
}

bool
PollingRegister::test(uint32_t bit) const
{
    LS_ASSERT(bit < kBits, "polling bit out of range");
    return (words_[bit >> 6] >> (bit & 63)) & 1;
}

uint32_t
PollingRegister::popcount() const
{
    uint32_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<uint32_t>(__builtin_popcountll(w));
    return n;
}

Dcc::Dcc(const DccConfig &cfg, const DataLayout &layout,
         std::vector<Nma> &nmas)
    : cfg_(cfg), layout_(layout), nmas_(nmas)
{
    LS_ASSERT(!nmas.empty(), "DCC needs at least one NMA");
}

void
Dcc::submit(AttentionRequest request)
{
    LS_ASSERT(queue_.size() < cfg_.queueDepth,
              "DCC request queue overflow (depth ", cfg_.queueDepth, ")");
    queue_.push_back(std::move(request));
}

uint32_t
Dcc::responseBufferFor(uint32_t uid)
{
    auto it = bufferCam_.find(uid);
    if (it != bufferCam_.end())
        return it->second;
    LS_ASSERT(bufferCam_.size() < cfg_.responseBuffers,
              "response buffers exhausted (", cfg_.responseBuffers, ")");
    const auto idx = static_cast<uint32_t>(bufferCam_.size());
    bufferCam_.emplace(uid, idx);
    return idx;
}

AttentionResponse
Dcc::processNext()
{
    LS_ASSERT(!queue_.empty(), "processNext on an empty queue");
    AttentionRequest req = std::move(queue_.front());
    queue_.pop_front();

    AttentionResponse resp;
    resp.uid = req.uid;
    resp.layer = req.layer;
    resp.responseBuffer = responseBufferFor(req.uid);

    const Tick dispatch = req.arrivalTick + cfg_.dispatchOverhead;

    // Dispatch offloads package by package: each NMA owns its package
    // (timing state, PFU filtering), so distinct packages run on
    // distinct host threads — the simulated bank/package parallelism
    // becomes real host parallelism. Offloads that share a package
    // keep their FIFO order within that package's lane, exactly as
    // the serial loop processed them.
    std::vector<OffloadResult> results(req.headOffloads.size());
    std::vector<std::vector<size_t>> by_package(nmas_.size());
    for (size_t i = 0; i < req.headOffloads.size(); ++i) {
        const auto &spec = req.headOffloads[i];
        const uint32_t pkg = layout_.packageFor(spec.user, spec.kvHead);
        LS_ASSERT(pkg < nmas_.size(), "package ", pkg, " has no NMA");
        by_package[pkg].push_back(i);
    }
    std::vector<uint32_t> active;
    for (uint32_t pkg = 0; pkg < by_package.size(); ++pkg)
        if (!by_package[pkg].empty())
            active.push_back(pkg);
    ThreadPool::global().parallelFor(0, active.size(), [&](size_t pi) {
        LS_PARALLEL_BODY();
        const uint32_t pkg = active[pi];
        for (size_t i : by_package[pkg])
            results[i] = nmas_[pkg].process(dispatch,
                                            req.headOffloads[i]);
    });

    // Aggregate in the request's offload order.
    Tick done = dispatch;
    for (auto &r : results) {
        done = std::max(done, r.doneTick);
        resp.responseBytes += r.valueBytes;
        resp.headResults.push_back(std::move(r));
    }
    resp.readyTick = done + cfg_.aggregationOverhead;
    pollReg_.set(resp.responseBuffer);
    return resp;
}

void
Dcc::acknowledge(uint32_t uid)
{
    auto it = bufferCam_.find(uid);
    LS_ASSERT(it != bufferCam_.end(), "acknowledge of unknown user ", uid);
    pollReg_.clear(it->second);
}

std::vector<AttentionResponse>
Dcc::processAll()
{
    std::vector<AttentionResponse> out;
    while (hasWork())
        out.push_back(processNext());
    return out;
}

} // namespace longsight

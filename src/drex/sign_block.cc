#include "drex/sign_block.hh"

#include <bit>

#include "util/logging.hh"

namespace longsight {

SignBlockImage::SignBlockImage(const SignBits *keys, uint32_t num_keys)
    : dim_(num_keys ? static_cast<uint32_t>(keys[0].dim()) : 0),
      numKeys_(num_keys)
{
    LS_ASSERT(num_keys >= 1 && num_keys <= 128,
              "sign block holds 1..128 keys");
    columns_.assign(2ULL * dim_, 0);
    for (uint32_t k = 0; k < num_keys; ++k) {
        LS_ASSERT(keys[k].dim() == dim_, "mixed key dimensions");
        for (uint32_t d = 0; d < dim_; ++d) {
            if (keys[k].bit(d))
                columns_[2ULL * d + (k >> 6)] |= uint64_t{1} << (k & 63);
        }
    }
}

SignBlockImage::SignBlockImage(const SignMatrix &keys, size_t begin,
                               uint32_t num_keys)
    : dim_(static_cast<uint32_t>(keys.dim())), numKeys_(num_keys)
{
    LS_ASSERT(num_keys >= 1 && num_keys <= 128,
              "sign block holds 1..128 keys");
    LS_ASSERT(begin + num_keys <= keys.rows(), "sign block range [",
              begin, ",", begin + num_keys, ") out of ", keys.rows());
    columns_.assign(2ULL * dim_, 0);
    for (uint32_t k = 0; k < num_keys; ++k) {
        const uint64_t *row = keys.row(begin + k);
        for (uint32_t d = 0; d < dim_; ++d) {
            if ((row[d >> 6] >> (d & 63)) & 1)
                columns_[2ULL * d + (k >> 6)] |= uint64_t{1} << (k & 63);
        }
    }
}

const uint64_t *
SignBlockImage::column(uint32_t d) const
{
    LS_ASSERT(d < dim_, "column out of range");
    return columns_.data() + 2ULL * d;
}

SignBits
SignBlockImage::extractKey(uint32_t i) const
{
    LS_ASSERT(i < numKeys_, "key out of range");
    // Rebuild a float vector whose signs match, then repack — keeps
    // SignBits' constructor the single packing implementation.
    std::vector<float> v(dim_);
    for (uint32_t d = 0; d < dim_; ++d) {
        const bool bit = (columns_[2ULL * d + (i >> 6)] >> (i & 63)) & 1;
        v[d] = bit ? 1.0f : -1.0f;
    }
    return SignBits(v.data(), dim_);
}

Bitmap128
SignBlockImage::columnwiseFilter(const SignBits &query,
                                 int threshold) const
{
    LS_ASSERT(query.dim() == dim_, "query dimension mismatch");
    // Per-key mismatch accumulators, updated one dimension (column)
    // per iteration — the PFU's d-cycle schedule.
    std::vector<uint16_t> mismatches(numKeys_, 0);
    for (uint32_t d = 0; d < dim_; ++d) {
        const uint64_t qbit = query.bit(d) ? ~uint64_t{0} : 0;
        const uint64_t *col = column(d);
        for (uint32_t w = 0; w < 2; ++w) {
            uint64_t diff = col[w] ^ qbit;
            // Mask tail keys beyond numKeys_.
            const uint32_t base = w * 64;
            while (diff) {
                const auto bit =
                    static_cast<uint32_t>(std::countr_zero(diff));
                diff &= diff - 1;
                const uint32_t key = base + bit;
                if (key < numKeys_)
                    ++mismatches[key];
            }
        }
    }
    Bitmap128 out;
    for (uint32_t k = 0; k < numKeys_; ++k) {
        const int concordance =
            static_cast<int>(dim_) - mismatches[k];
        if (concordance >= threshold)
            out.set(k);
    }
    return out;
}

} // namespace longsight

#include "drex/drex_device.hh"

#include "util/logging.hh"

namespace longsight {

DrexDevice::DrexDevice(const DrexConfig &cfg)
    : cfg_(cfg),
      layout_(cfg.geometry, cfg.timings, cfg.numKvHeads, cfg.numLayers,
              cfg.headDim)
{
    packages_.reserve(cfg.geometry.numPackages);
    for (uint32_t p = 0; p < cfg.geometry.numPackages; ++p)
        packages_.emplace_back(cfg.timings, cfg.geometry.channelsPerPackage);

    nmas_.reserve(cfg.geometry.numPackages);
    for (uint32_t p = 0; p < cfg.geometry.numPackages; ++p)
        nmas_.emplace_back(cfg.nma, layout_, packages_[p]);

    dcc_ = std::make_unique<Dcc>(cfg.dcc, layout_, nmas_);
}

DramPackage &
DrexDevice::package(uint32_t i)
{
    LS_ASSERT(i < packages_.size(), "package index out of range");
    return packages_[i];
}

Nma &
DrexDevice::nma(uint32_t i)
{
    LS_ASSERT(i < nmas_.size(), "NMA index out of range");
    return nmas_[i];
}

uint64_t
DrexDevice::capacityBytes() const
{
    return static_cast<uint64_t>(cfg_.geometry.totalChannels()) *
        cfg_.timings.channelCapacity;
}

uint32_t
DrexDevice::maxUsers(uint64_t context_len) const
{
    if (context_len == 0)
        return 0;
    const uint64_t per_user = layout_.bytesPerToken() * context_len;
    const uint64_t by_capacity = capacityBytes() / per_user;
    // The DCC supports at most queueDepth concurrent users (§7.2).
    return static_cast<uint32_t>(
        std::min<uint64_t>(by_capacity, cfg_.dcc.queueDepth));
}

KvCache &
DrexDevice::writeContext(uint32_t user, uint32_t layer, uint32_t kv_head,
                         const Matrix &keys, const Matrix &values)
{
    const ContextKey key{user, layer, kv_head};
    KvCache *cache;
    {
        std::lock_guard<std::mutex> lock(contextsMu_);
        auto it = contexts_.find(key);
        if (it == contexts_.end()) {
            it = contexts_.emplace(key, KvCache(cfg_.headDim)).first;
        }
        cache = &it->second;
    }
    // The bulk copy happens outside the lock: concurrent writers hit
    // distinct (user, layer, head) caches, and map node references
    // survive later inserts.
    cache->appendAll(keys, values);
    LS_ASSERT(cache->size() <=
                  layout_.maxTokensPerSlice() * cfg_.geometry.numPackages,
              "context exceeds device slice capacity");
    return *cache;
}

KvCache &
DrexDevice::context(uint32_t user, uint32_t layer, uint32_t kv_head)
{
    std::lock_guard<std::mutex> lock(contextsMu_);
    auto it = contexts_.find(ContextKey{user, layer, kv_head});
    LS_ASSERT(it != contexts_.end(), "no context stored for user ", user,
              " layer ", layer, " head ", kv_head);
    return it->second;
}

bool
DrexDevice::hasContext(uint32_t user, uint32_t layer,
                       uint32_t kv_head) const
{
    std::lock_guard<std::mutex> lock(contextsMu_);
    return contexts_.count(ContextKey{user, layer, kv_head}) > 0;
}

Tick
DrexDevice::chargeContextWrite(Tick start, uint32_t user, uint32_t layer,
                               uint32_t kv_head, uint64_t first_token,
                               uint64_t num_tokens)
{
    LS_ASSERT(num_tokens > 0, "empty context write");
    Tick done = start;
    const uint32_t key_bytes = layout_.keyBytes();
    const uint32_t sign_bytes_per_key = cfg_.headDim / 8;
    for (uint64_t i = 0; i < num_tokens; ++i) {
        const uint64_t token = first_token + i;
        const TokenPlace p = layout_.place(user, layer, kv_head, token);
        DramPackage &pkg = packages_[p.package];
        // Sign bits land in the sign channel's bank (bit-transposed
        // within the Key Sign Object)...
        done = std::max(done,
                        pkg.channel(p.signChannel)
                            .write(start, p.bank, p.signRow,
                                   sign_bytes_per_key));
        // ...while the full-precision key and value stripe across all
        // channels of the package.
        const uint32_t slice =
            key_bytes / cfg_.geometry.channelsPerPackage;
        for (uint32_t c = 0; c < cfg_.geometry.channelsPerPackage; ++c) {
            done = std::max(done, pkg.channel(c).write(start, p.bank,
                                                       p.keyRow, slice));
            done = std::max(done, pkg.channel(c).write(start, p.bank,
                                                       p.valueRow, slice));
        }
    }
    return done;
}

} // namespace longsight

/**
 * @file
 * DReX CXL Controller (DCC) with the LongSight extensions of §7.2:
 * a hardware-managed FIFO Request Queue (depth 512 = max batch size),
 * 512 Response Buffers, a Polling Register, and a CAM mapping each
 * User ID to its response buffer and polling bit. The DCC pulls
 * request descriptors in FIFO order, splits them into per-KV-head
 * offloads, dispatches each offload to the NMA of the package holding
 * that head's Context Slice, and aggregates the partial top-k results
 * into the user's response buffer.
 */

#ifndef LONGSIGHT_DREX_DCC_HH
#define LONGSIGHT_DREX_DCC_HH

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "drex/layout.hh"
#include "drex/nma.hh"
#include "util/units.hh"

namespace longsight {

/**
 * The 512-bit Polling Register (§7.2): one completion bit per
 * response buffer. The GPU reads the whole register in one CXL access
 * and clears its user's bit when it consumes the response.
 */
class PollingRegister
{
  public:
    static constexpr uint32_t kBits = 512;

    void set(uint32_t bit);
    void clear(uint32_t bit);
    bool test(uint32_t bit) const;

    /** Number of completions currently signalled. */
    uint32_t popcount() const;

    /** Raw 64-byte register image (what a CXL read returns). */
    const std::array<uint64_t, kBits / 64> &words() const
    {
        return words_;
    }

  private:
    std::array<uint64_t, kBits / 64> words_{};
};

/**
 * DCC hardware parameters (§7.2).
 */
struct DccConfig
{
    uint32_t queueDepth = 512;        //!< request queue entries
    uint32_t responseBuffers = 512;   //!< one per concurrent user
    Tick dispatchOverhead = fromNanoseconds(50.0); //!< descriptor decode
    Tick aggregationOverhead = fromNanoseconds(100.0); //!< top-k merge
};

/**
 * One attention request descriptor as written by the GPU: the user,
 * the layer, and one offload spec per KV head.
 */
struct AttentionRequest
{
    uint32_t uid = 0;
    uint32_t layer = 0;
    std::vector<OffloadSpec> headOffloads;
    Tick arrivalTick = 0; //!< when the MMIO write lands at the DCC
};

/**
 * Aggregated response for one request.
 */
struct AttentionResponse
{
    uint32_t uid = 0;
    uint32_t layer = 0;
    std::vector<OffloadResult> headResults;
    uint32_t responseBuffer = 0;
    Tick readyTick = 0;       //!< polling register bit set
    uint64_t responseBytes = 0; //!< top-k scores + values payload
};

/**
 * The DCC: FIFO queueing, NMA dispatch, response aggregation.
 */
class Dcc
{
  public:
    Dcc(const DccConfig &cfg, const DataLayout &layout,
        std::vector<Nma> &nmas);

    const DccConfig &config() const { return cfg_; }

    /** Queue a request (asserts the queue is not full). */
    void submit(AttentionRequest request);

    /** Requests currently queued. */
    size_t queued() const { return queue_.size(); }

    /** True when a request is waiting. */
    bool hasWork() const { return !queue_.empty(); }

    /**
     * Pop the queue head and run it to completion across the NMAs.
     * FIFO order is architectural (§7.2): generation is sequential per
     * user, so the head request never waits on a later one.
     */
    AttentionResponse processNext();

    /** Drain the whole queue, returning responses in FIFO order. */
    std::vector<AttentionResponse> processAll();

    /**
     * CAM lookup: response buffer index for a user (allocated on
     * first use; asserts when buffers are exhausted).
     */
    uint32_t responseBufferFor(uint32_t uid);

    /** Number of users currently holding response buffers. */
    size_t activeUsers() const { return bufferCam_.size(); }

    /** Completion bits, one per response buffer (§7.2). */
    PollingRegister &pollingRegister() { return pollReg_; }
    const PollingRegister &pollingRegister() const { return pollReg_; }

    /** GPU-side consume: read the response, clear its polling bit. */
    void acknowledge(uint32_t uid);

  private:
    DccConfig cfg_;
    const DataLayout &layout_;
    std::vector<Nma> &nmas_;
    std::deque<AttentionRequest> queue_;
    std::unordered_map<uint32_t, uint32_t> bufferCam_;
    PollingRegister pollReg_;
};

} // namespace longsight

#endif // LONGSIGHT_DREX_DCC_HH

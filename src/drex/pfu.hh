/**
 * @file
 * PIM Filtering Unit (PFU) model (§7.1, §7.4). One PFU sits next to
 * each LPDDR bank, reads the bit-transposed Key Sign Object through
 * the 128-bit interconnect between local and global row buffers (one
 * dimension across 128 keys per cycle), and emits a 128-bit bitmap
 * per query marking keys whose sign concordance meets the threshold.
 *
 * The functional output is bit-exact with software SCF (tested), and
 * the timing uses the paper's synthesized constant: bitmap generation
 * takes d x 1.25 ns per query (§8.2).
 */

#ifndef LONGSIGHT_DREX_PFU_HH
#define LONGSIGHT_DREX_PFU_HH

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "util/units.hh"

namespace longsight {

/**
 * A 128-wide filter bitmap (one bit per key in the block).
 */
class Bitmap128
{
  public:
    Bitmap128() = default;

    /** Adopt two packed words (bits 0..63, 64..127) — the shape the
     *  batch concordanceBitmap kernel emits. */
    static Bitmap128 fromWords(uint64_t lo, uint64_t hi);

    void set(uint32_t i);
    bool test(uint32_t i) const;
    uint32_t popcount() const;

    /** Indices of set bits, offset by `base`. */
    std::vector<uint32_t> setIndices(uint32_t base = 0) const;

    bool operator==(const Bitmap128 &o) const = default;

  private:
    std::array<uint64_t, 2> words_{0, 0};
};

/**
 * Per-bank PIM filtering unit.
 */
class Pfu
{
  public:
    /** Hardware block width: keys filtered per epoch per bank. */
    static constexpr uint32_t kBlockKeys = 128;

    /** Maximum queries per offload the PFU datapath supports (§7.1). */
    static constexpr uint32_t kMaxQueries = 16;

    /**
     * Filter one block: for each query, bit i is set iff
     * concordance(query, keys[i]) >= threshold. keys.size() <= 128.
     * Scalar reference implementation (key-major SignBits walk).
     */
    static std::vector<Bitmap128>
    filterBlock(const std::vector<SignBits> &query_signs,
                const SignBits *keys, uint32_t num_keys, int threshold);

    /**
     * Same filter over a packed SignMatrix burst: keys are rows
     * [begin, begin + num_keys) of `keys`. Runs the runtime-dispatched
     * batch kernel (AVX2/NEON when available); bit-identical to the
     * SignBits overload, which tests enforce.
     */
    static std::vector<Bitmap128>
    filterBlock(const std::vector<SignBits> &query_signs,
                const SignMatrix &keys, size_t begin, uint32_t num_keys,
                int threshold);

    /**
     * Allocation-free flavour over caller storage (scratch memory in
     * the NMA hot loop): queries are `num_queries` pre-packed
     * sign-word rows of `words_per_query` words each (see packSigns),
     * and `bitmaps` must hold num_queries entries. Bit-identical to
     * the other overloads.
     */
    static void filterBlock(const uint64_t *query_words,
                            size_t words_per_query, uint32_t num_queries,
                            const SignMatrix &keys, size_t begin,
                            uint32_t num_keys, int threshold,
                            Bitmap128 *bitmaps);

    /**
     * Bitmap generation latency: one 128-wide dimension comparison per
     * cycle at 1.25 ns, times the number of queries in the group.
     */
    static Tick bitmapGenTime(uint32_t head_dim, uint32_t num_queries);
};

} // namespace longsight

#endif // LONGSIGHT_DREX_PFU_HH

/**
 * @file
 * Near-Memory Accelerator (NMA) model (§7.1, §7.4). One NMA per
 * LPDDR5X package processes sparse-attention offloads for a single
 * (user, layer, KV head) at a time, alternating between:
 *
 *  - *filter epochs*: every bank's PFU filters one 128-key block in
 *    parallel (up to banks x 128 keys per epoch per package); the NMA
 *    then reads one bitmap per bank per query;
 *  - *scoring*: surviving keys are fetched at full precision, striped
 *    across all 8 channels (§7.3.3), and dot-producted against the
 *    query group; and
 *  - *ranking*: a bounded top-k (hardware cap 1024) is maintained per
 *    query.
 *
 * After ranking, the selected value vectors are read from DRAM; their
 * CXL transfer is charged by the DCC/system layer. Timing constants
 * (bitmap generation d x 1.25 ns, bitmap read 120.4 ns, address
 * generation 1024 ns) come from the paper's RTL synthesis (§8.2).
 *
 * The NMA runs functionally when the offload carries real data (its
 * top-k then matches the software LongSightAttn reference bit-exactly)
 * or in timing-only mode with a modelled survivor fraction, which is
 * how million-token configurations are simulated.
 */

#ifndef LONGSIGHT_DREX_NMA_HH
#define LONGSIGHT_DREX_NMA_HH

#include <cstdint>
#include <vector>

#include "core/kv_cache.hh"
#include "core/topk.hh"
#include "dram/package.hh"
#include "drex/layout.hh"
#include "drex/pfu.hh"
#include "tensor/tensor.hh"
#include "util/units.hh"

namespace longsight {

/**
 * NMA hardware parameters (Table 2 / §8.2 defaults).
 */
struct NmaConfig
{
    double dotProductFlops = 26.11e12 / 8; //!< per-NMA FLOP/s (Table 2)
    uint32_t maxTopK = 1024;               //!< hardware top-k cap (§7.2)
    Tick bitmapReadLatency = fromNanoseconds(120.4);
    Tick addrGenOverhead = fromNanoseconds(1024.0);
    Tick topkInsertTime = fromNanoseconds(0.1); //!< pipelined sorter slot
};

/**
 * Stacked latency breakdown of one offload (Fig. 8 components).
 */
struct OffloadTiming
{
    Tick addrGen = 0;
    Tick filter = 0;
    Tick bitmapRead = 0;
    Tick score = 0;
    Tick rank = 0;
    Tick valueRead = 0;

    Tick total() const
    {
        return addrGen + filter + bitmapRead + score + rank + valueRead;
    }
};

/**
 * One sparse-attention offload for a single (user, layer, KV head).
 */
struct OffloadSpec
{
    uint32_t user = 0;
    uint32_t layer = 0;
    uint32_t kvHead = 0;
    uint64_t sparseBegin = 0; //!< first sparse-region token (global idx)
    uint64_t sparseEnd = 0;   //!< one past the last sparse-region token
    uint32_t numQueries = 1;  //!< GQA group size (<= 16)
    uint32_t k = 1024;
    int threshold = 0;

    // Functional inputs; leave null for timing-only simulation.
    const KvCache *cache = nullptr;   //!< keys + filter signs, global idx
    const Matrix *queries = nullptr;  //!< numQueries x d, original space
    const Matrix *filterQueries = nullptr; //!< numQueries x d, ITQ space

    // Timing-only survivor model (ignored when cache is set).
    double survivorFraction = 0.10;

    /**
     * Score survivors from INT8 Key Objects (half the fetch bytes per
     * survivor); requires the cache to have quantization enabled when
     * running functionally.
     */
    bool quantizedScoring = false;
};

/**
 * Result and timing of one offload.
 */
struct OffloadResult
{
    std::vector<std::vector<ScoredIndex>> topk; //!< per query, best-first
    std::vector<uint32_t> valueTokens; //!< union of selected token indices
    uint64_t regionTokens = 0;
    uint64_t survivors = 0;
    uint64_t epochs = 0;
    uint64_t valueBytes = 0; //!< value payload later moved over CXL
    OffloadTiming timing;
    Tick startTick = 0;
    Tick doneTick = 0;
};

/**
 * The per-package near-memory accelerator.
 */
class Nma
{
  public:
    Nma(const NmaConfig &cfg, const DataLayout &layout,
        DramPackage &package);

    const NmaConfig &config() const { return cfg_; }

    /** First tick this NMA can accept new work. */
    Tick busyUntil() const { return busyUntil_; }

    /**
     * Process one offload no earlier than `start` (and no earlier than
     * the NMA frees up). Advances busyUntil().
     */
    OffloadResult process(Tick start, const OffloadSpec &spec);

  private:
    /**
     * Functional filtering of one epoch, entirely on caller (scratch)
     * storage. Each 128-key block's sign rows are streamed ONCE
     * through the whole query group (Pfu::filterBlock's multi-query
     * path), matching the hardware PFU's dataflow of testing all
     * in-flight queries against a key word as it passes by.
     * query_words holds numQueries packed sign rows of
     * words_per_query words each. Per-query survivor lists land in
     * per_query (numQueries rows of `stride` capacity; each query
     * ranks only keys its own bitmap kept) with counts in
     * per_query_counts; the union of survivors (each key is fetched
     * from DRAM once even when several queries of the group kept it)
     * lands in union_survivors (capacity `stride`). Returns the union
     * count. All spans must hold at least epoch_end - epoch_begin
     * entries per row.
     */
    size_t filterEpochFunctional(const OffloadSpec &spec,
                                 const uint64_t *query_words,
                                 size_t words_per_query,
                                 uint64_t epoch_begin, uint64_t epoch_end,
                                 uint32_t *union_survivors,
                                 uint32_t *per_query, size_t stride,
                                 size_t *per_query_counts) const;

    /** Timing-only survivor count for one epoch (deterministic). */
    uint64_t survivorsModelled(const OffloadSpec &spec,
                               uint64_t epoch_tokens) const;

    NmaConfig cfg_;
    const DataLayout &layout_;
    DramPackage &package_;
    Tick busyUntil_ = 0;
};

} // namespace longsight

#endif // LONGSIGHT_DREX_NMA_HH

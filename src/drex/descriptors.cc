#include "drex/descriptors.hh"

#include <cstring>

#include "util/logging.hh"

namespace longsight {

namespace {

template <typename T>
void
put(std::vector<uint8_t> &out, T v)
{
    const size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
T
get(const std::vector<uint8_t> &in, size_t &cursor)
{
    LS_ASSERT(cursor + sizeof(T) <= in.size(),
              "descriptor truncated at byte ", cursor);
    T v;
    std::memcpy(&v, in.data() + cursor, sizeof(T));
    cursor += sizeof(T);
    return v;
}

uint16_t
bf16Bits(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, 4);
    // Round-to-nearest-even on the dropped 16 bits.
    const uint32_t rounding = 0x7fff + ((bits >> 16) & 1);
    return static_cast<uint16_t>((bits + rounding) >> 16);
}

float
fromBf16Bits(uint16_t b)
{
    const uint32_t bits = static_cast<uint32_t>(b) << 16;
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
}

} // namespace

float
toBf16(float v)
{
    return fromBf16Bits(bf16Bits(v));
}

uint64_t
RequestDescriptor::byteSize() const
{
    return 5 * 4 + thresholds.size() * 4 +
        2ULL * numQueryHeads * headDim;
}

std::vector<uint8_t>
RequestDescriptor::serialize() const
{
    LS_ASSERT(queries.rows() == numQueryHeads &&
                  queries.cols() == headDim,
              "query matrix shape does not match descriptor header");
    std::vector<uint8_t> out;
    out.reserve(byteSize());
    put(out, uid);
    put(out, layer);
    put(out, k);
    put(out, numQueryHeads);
    put(out, headDim);
    for (int32_t th : thresholds)
        put(out, th);
    for (size_t i = 0; i < queries.size(); ++i)
        put(out, bf16Bits(queries.data()[i]));
    return out;
}

RequestDescriptor
RequestDescriptor::deserialize(const std::vector<uint8_t> &bytes)
{
    RequestDescriptor d;
    size_t cur = 0;
    d.uid = get<uint32_t>(bytes, cur);
    d.layer = get<uint32_t>(bytes, cur);
    d.k = get<uint32_t>(bytes, cur);
    d.numQueryHeads = get<uint32_t>(bytes, cur);
    d.headDim = get<uint32_t>(bytes, cur);
    LS_ASSERT(d.numQueryHeads <= 256 && d.headDim <= 1024,
              "implausible descriptor header");
    // Thresholds fill the remainder before the query payload.
    const uint64_t query_bytes = 2ULL * d.numQueryHeads * d.headDim;
    LS_ASSERT(bytes.size() >= cur + query_bytes,
              "descriptor too short for query payload");
    const size_t th_count = (bytes.size() - cur - query_bytes) / 4;
    d.thresholds.resize(th_count);
    for (size_t i = 0; i < th_count; ++i)
        d.thresholds[i] = get<int32_t>(bytes, cur);
    d.queries.resize(d.numQueryHeads, d.headDim);
    for (size_t i = 0; i < d.queries.size(); ++i)
        d.queries.data()[i] = fromBf16Bits(get<uint16_t>(bytes, cur));
    LS_ASSERT(cur == bytes.size(), "trailing bytes in descriptor");
    return d;
}

bool
RequestDescriptor::operator==(const RequestDescriptor &o) const
{
    if (uid != o.uid || layer != o.layer || k != o.k ||
        numQueryHeads != o.numQueryHeads || headDim != o.headDim ||
        thresholds != o.thresholds)
        return false;
    if (queries.rows() != o.queries.rows() ||
        queries.cols() != o.queries.cols())
        return false;
    for (size_t i = 0; i < queries.size(); ++i)
        if (queries.data()[i] != o.queries.data()[i])
            return false;
    return true;
}

} // namespace longsight

#include "drex/partition_manager.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

PartitionManager::PartitionManager(const DataLayout &layout,
                                   uint32_t num_kv_heads,
                                   uint32_t num_layers)
    : layout_(layout), numKvHeads_(num_kv_heads)
{
    const uint64_t rows_per_slot =
        static_cast<uint64_t>(layout.rowsPerLayerGroup()) * num_layers;
    const uint64_t rows_per_bank = layout.timings().rowsPerBank();
    slotsPerPackage_ =
        static_cast<uint32_t>(rows_per_bank / rows_per_slot);
    LS_ASSERT(slotsPerPackage_ > 0, "slice slot exceeds bank rows");

    const uint32_t packages = layout.geometry().numPackages;
    load_.assign(packages, 0);
    slotUsed_.assign(packages,
                     std::vector<bool>(slotsPerPackage_, false));
}

uint32_t
PartitionManager::totalSlots() const
{
    return slotsPerPackage_ * layout_.geometry().numPackages;
}

uint32_t
PartitionManager::slotsForContext(uint64_t context_len) const
{
    if (context_len == 0)
        return 0;
    const uint64_t per_slice = layout_.maxTokensPerSlice();
    const uint64_t segments = (context_len + per_slice - 1) / per_slice;
    return static_cast<uint32_t>(segments * numKvHeads_);
}

bool
PartitionManager::canAdmit(uint64_t context_len) const
{
    return usedSlots_ + slotsForContext(context_len) <= totalSlots();
}

uint64_t
PartitionManager::blockBudget(uint32_t block_tokens) const
{
    LS_ASSERT(block_tokens > 0, "block size must be positive");
    // The same token capacity the slot machinery manages, re-expressed
    // in fixed-size pages: every slot holds one head's slice of up to
    // maxTokensPerSlice tokens.
    return static_cast<uint64_t>(totalSlots()) *
        layout_.maxTokensPerSlice() / block_tokens;
}

uint64_t
PartitionManager::blocksForContext(uint64_t context_len,
                                   uint32_t block_tokens) const
{
    LS_ASSERT(block_tokens > 0, "block size must be positive");
    if (context_len == 0)
        return 0;
    const uint64_t per_head =
        (context_len + block_tokens - 1) / block_tokens;
    return per_head * numKvHeads_;
}

bool
PartitionManager::canAdmitBlocks(uint64_t blocks_in_use,
                                 uint64_t context_len,
                                 uint32_t block_tokens) const
{
    return blocks_in_use + blocksForContext(context_len, block_tokens) <=
        blockBudget(block_tokens);
}

uint32_t
PartitionManager::maxUsersExact(uint64_t context_len) const
{
    const uint32_t need = slotsForContext(context_len);
    return need ? totalSlots() / need : 0;
}

std::optional<UserPartition>
PartitionManager::allocate(uint32_t user, uint64_t context_len)
{
    LS_ASSERT(!hasUser(user), "user ", user, " already has a partition");
    const uint32_t need = slotsForContext(context_len);
    if (need == 0 || usedSlots_ + need > totalSlots())
        return std::nullopt;

    UserPartition part;
    part.user = user;
    part.contextLen = context_len;

    const uint64_t per_slice = layout_.maxTokensPerSlice();
    const uint32_t segments = static_cast<uint32_t>(
        (context_len + per_slice - 1) / per_slice);
    const uint32_t packages = layout_.geometry().numPackages;

    for (uint32_t h = 0; h < numKvHeads_; ++h) {
        for (uint32_t s = 0; s < segments; ++s) {
            // Least-loaded package, rotating tie-break by (user+head)
            // so co-scheduled heads land on distinct packages.
            uint32_t best = 0;
            uint32_t best_load = UINT32_MAX;
            for (uint32_t i = 0; i < packages; ++i) {
                const uint32_t p = (user + h + i) % packages;
                if (load_[p] < slotsPerPackage_ &&
                    load_[p] < best_load) {
                    best = p;
                    best_load = load_[p];
                }
            }
            LS_ASSERT(best_load != UINT32_MAX,
                      "slot accounting out of sync");
            // First free slot in the chosen package.
            uint32_t slot = 0;
            while (slotUsed_[best][slot])
                ++slot;
            slotUsed_[best][slot] = true;
            ++load_[best];
            ++usedSlots_;
            part.grants.push_back({h, s, best, slot});
        }
    }
    auto [it, inserted] = users_.emplace(user, std::move(part));
    LS_ASSERT(inserted, "duplicate partition insert");
    return it->second;
}

void
PartitionManager::release(uint32_t user)
{
    auto it = users_.find(user);
    if (it == users_.end())
        return;
    for (const SliceGrant &g : it->second.grants) {
        LS_ASSERT(slotUsed_[g.package][g.slot],
                  "releasing an unallocated slot");
        slotUsed_[g.package][g.slot] = false;
        --load_[g.package];
        --usedSlots_;
    }
    users_.erase(it);
}

BlockLedger::BlockLedger(const PartitionManager &pm,
                         uint32_t block_tokens)
    : pm_(&pm), blockTokens_(block_tokens), numKvHeads_(pm.numKvHeads()),
      budget_(pm.blockBudget(block_tokens))
{
    LS_ASSERT(block_tokens > 0, "block size must be positive");
}

BlockLedger::BlockLedger(uint64_t budget_blocks, uint32_t block_tokens,
                         uint32_t num_kv_heads)
    : blockTokens_(block_tokens), numKvHeads_(num_kv_heads),
      budget_(budget_blocks)
{
    LS_ASSERT(block_tokens > 0 && num_kv_heads > 0,
              "degenerate block ledger");
}

uint64_t
BlockLedger::blocksFor(uint64_t tokens) const
{
    if (pm_)
        return pm_->blocksForContext(tokens, blockTokens_);
    if (tokens == 0)
        return 0;
    return (tokens + blockTokens_ - 1) / blockTokens_ * numKvHeads_;
}

uint64_t
BlockLedger::privateBlocksFor(uint64_t tokens,
                              uint64_t shared_prefix_tokens) const
{
    const uint64_t shared = std::min(shared_prefix_tokens, tokens);
    const uint64_t all = blocksFor(tokens);
    const uint64_t shared_blocks =
        shared / blockTokens_ * numKvHeads_;
    return all > shared_blocks ? all - shared_blocks : 0;
}

bool
BlockLedger::canReserve(uint64_t tokens) const
{
    return canReserve(tokens, 0);
}

bool
BlockLedger::canReserve(uint64_t tokens,
                        uint64_t shared_prefix_tokens) const
{
    const uint64_t need = privateBlocksFor(tokens, shared_prefix_tokens);
    MutexLock lock(mu_);
    return inUse_ + need <= budget_;
}

void
BlockLedger::reserve(uint64_t tokens)
{
    reserve(tokens, 0);
}

void
BlockLedger::reserve(uint64_t tokens, uint64_t shared_prefix_tokens)
{
    const uint64_t need = privateBlocksFor(tokens, shared_prefix_tokens);
    MutexLock lock(mu_);
    LS_ASSERT(inUse_ + need <= budget_, "block budget exceeded: ",
              inUse_, " + ", need, " > ", budget_);
    inUse_ += need;
    peak_ = std::max(peak_, inUse_);
}

void
BlockLedger::release(uint64_t tokens)
{
    release(tokens, 0);
}

void
BlockLedger::release(uint64_t tokens, uint64_t shared_prefix_tokens)
{
    const uint64_t need = privateBlocksFor(tokens, shared_prefix_tokens);
    MutexLock lock(mu_);
    LS_ASSERT(need <= inUse_, "releasing more blocks than reserved");
    inUse_ -= need;
}

} // namespace longsight

/**
 * @file
 * The Key Sign Object's physical bit layout (§7.3.3): sign bits of a
 * 128-key block are stored bit-transposed — each 128-bit DRAM column
 * holds ONE dimension across all 128 keys — so the PFU can consume
 * one dimension per cycle through the 128-bit local/global row-buffer
 * interconnect. SignBlockImage builds and reads that exact image, and
 * columnwiseFilter() evaluates SCF the way the hardware does: per
 * dimension, XOR the query's bit against the whole column and
 * accumulate per-key mismatch counts. Tested bit-exact against the
 * key-major software path.
 */

#ifndef LONGSIGHT_DREX_SIGN_BLOCK_HH
#define LONGSIGHT_DREX_SIGN_BLOCK_HH

#include <cstdint>
#include <vector>

#include "drex/pfu.hh"
#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"

namespace longsight {

/**
 * Bit-transposed sign storage for up to 128 keys.
 */
class SignBlockImage
{
  public:
    /**
     * Build the image from key-major sign bits.
     *
     * @param keys up to 128 SignBits, all of the same dimension
     */
    SignBlockImage(const SignBits *keys, uint32_t num_keys);

    /**
     * Build the image straight from a packed SignMatrix burst: rows
     * [begin, begin + num_keys) become keys 0..num_keys-1 of the
     * block. This is how a host-side sign matrix ships to a bank.
     */
    SignBlockImage(const SignMatrix &keys, size_t begin,
                   uint32_t num_keys);

    uint32_t dim() const { return dim_; }
    uint32_t numKeys() const { return numKeys_; }

    /** The 128-bit column of dimension d (two 64-bit words). */
    const uint64_t *column(uint32_t d) const;

    /** Byte size of the stored image (what one bank holds). */
    size_t byteSize() const { return columns_.size() * 8; }

    /** Reconstruct key i's sign bits (round-trip check). */
    SignBits extractKey(uint32_t i) const;

    /**
     * Hardware-order SCF: for each dimension, broadcast the query's
     * sign bit against the column and count mismatches per key; keys
     * with dim - mismatches >= threshold set their bitmap bit.
     */
    Bitmap128 columnwiseFilter(const SignBits &query, int threshold) const;

  private:
    uint32_t dim_;
    uint32_t numKeys_;
    std::vector<uint64_t> columns_; //!< 2 words per dimension
};

} // namespace longsight

#endif // LONGSIGHT_DREX_SIGN_BLOCK_HH

#include "drex/pfu.hh"

#include <bit>

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace longsight {

Bitmap128
Bitmap128::fromWords(uint64_t lo, uint64_t hi)
{
    Bitmap128 b;
    b.words_[0] = lo;
    b.words_[1] = hi;
    return b;
}

void
Bitmap128::set(uint32_t i)
{
    LS_ASSERT(i < 128, "bitmap index out of range");
    words_[i >> 6] |= uint64_t{1} << (i & 63);
}

bool
Bitmap128::test(uint32_t i) const
{
    LS_ASSERT(i < 128, "bitmap index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
}

uint32_t
Bitmap128::popcount() const
{
    return static_cast<uint32_t>(std::popcount(words_[0]) +
                                 std::popcount(words_[1]));
}

std::vector<uint32_t>
Bitmap128::setIndices(uint32_t base) const
{
    std::vector<uint32_t> out;
    for (uint32_t i = 0; i < 128; ++i) {
        if (test(i))
            out.push_back(base + i);
    }
    return out;
}

std::vector<Bitmap128>
Pfu::filterBlock(const std::vector<SignBits> &query_signs,
                 const SignBits *keys, uint32_t num_keys, int threshold)
{
    LS_ASSERT(num_keys <= kBlockKeys, "PFU block holds at most 128 keys");
    LS_ASSERT(!query_signs.empty() && query_signs.size() <= kMaxQueries,
              "PFU supports 1..16 queries per offload, got ",
              query_signs.size());

    std::vector<Bitmap128> bitmaps(query_signs.size());
    for (size_t q = 0; q < query_signs.size(); ++q) {
        for (uint32_t i = 0; i < num_keys; ++i) {
            if (query_signs[q].concordance(keys[i]) >= threshold)
                bitmaps[q].set(i);
        }
    }
    return bitmaps;
}

std::vector<Bitmap128>
Pfu::filterBlock(const std::vector<SignBits> &query_signs,
                 const SignMatrix &keys, size_t begin, uint32_t num_keys,
                 int threshold)
{
    LS_ASSERT(num_keys <= kBlockKeys, "PFU block holds at most 128 keys");
    LS_ASSERT(!query_signs.empty() && query_signs.size() <= kMaxQueries,
              "PFU supports 1..16 queries per offload, got ",
              query_signs.size());

    std::vector<Bitmap128> bitmaps;
    bitmaps.reserve(query_signs.size());
    for (const SignBits &qs : query_signs) {
        uint64_t words[2];
        concordanceBitmap(qs, keys, begin, num_keys, threshold, words);
        bitmaps.push_back(Bitmap128::fromWords(words[0], words[1]));
    }
    return bitmaps;
}

void
Pfu::filterBlock(const uint64_t *query_words, size_t words_per_query,
                 uint32_t num_queries, const SignMatrix &keys, size_t begin,
                 uint32_t num_keys, int threshold, Bitmap128 *bitmaps)
{
    LS_ASSERT(num_keys <= kBlockKeys, "PFU block holds at most 128 keys");
    LS_ASSERT(num_queries >= 1 && num_queries <= kMaxQueries,
              "PFU supports 1..16 queries per offload, got ", num_queries);

    for (uint32_t q = 0; q < num_queries; ++q) {
        uint64_t words[2];
        concordanceBitmap(query_words + q * words_per_query, keys, begin,
                          num_keys, threshold, words);
        bitmaps[q] = Bitmap128::fromWords(words[0], words[1]);
    }
}

Tick
Pfu::bitmapGenTime(uint32_t head_dim, uint32_t num_queries)
{
    // d cycles at 1.25 ns per query (§8.2 RTL synthesis figure).
    return fromNanoseconds(1.25 * head_dim * num_queries);
}

} // namespace longsight

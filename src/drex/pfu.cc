#include "drex/pfu.hh"

#include <algorithm>
#include <bit>

#include "tensor/kernels.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

Bitmap128
Bitmap128::fromWords(uint64_t lo, uint64_t hi)
{
    Bitmap128 b;
    b.words_[0] = lo;
    b.words_[1] = hi;
    return b;
}

void
Bitmap128::set(uint32_t i)
{
    LS_ASSERT(i < 128, "bitmap index out of range");
    words_[i >> 6] |= uint64_t{1} << (i & 63);
}

bool
Bitmap128::test(uint32_t i) const
{
    LS_ASSERT(i < 128, "bitmap index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
}

uint32_t
Bitmap128::popcount() const
{
    return static_cast<uint32_t>(std::popcount(words_[0]) +
                                 std::popcount(words_[1]));
}

std::vector<uint32_t>
Bitmap128::setIndices(uint32_t base) const
{
    std::vector<uint32_t> out;
    for (uint32_t i = 0; i < 128; ++i) {
        if (test(i))
            out.push_back(base + i);
    }
    return out;
}

std::vector<Bitmap128>
Pfu::filterBlock(const std::vector<SignBits> &query_signs,
                 const SignBits *keys, uint32_t num_keys, int threshold)
{
    LS_ASSERT(num_keys <= kBlockKeys, "PFU block holds at most 128 keys");
    LS_ASSERT(!query_signs.empty() && query_signs.size() <= kMaxQueries,
              "PFU supports 1..16 queries per offload, got ",
              query_signs.size());

    std::vector<Bitmap128> bitmaps(query_signs.size());
    for (size_t q = 0; q < query_signs.size(); ++q) {
        for (uint32_t i = 0; i < num_keys; ++i) {
            if (query_signs[q].concordance(keys[i]) >= threshold)
                bitmaps[q].set(i);
        }
    }
    return bitmaps;
}

std::vector<Bitmap128>
Pfu::filterBlock(const std::vector<SignBits> &query_signs,
                 const SignMatrix &keys, size_t begin, uint32_t num_keys,
                 int threshold)
{
    LS_ASSERT(num_keys <= kBlockKeys, "PFU block holds at most 128 keys");
    LS_ASSERT(!query_signs.empty() && query_signs.size() <= kMaxQueries,
              "PFU supports 1..16 queries per offload, got ",
              query_signs.size());

    // Pack the group's sign words contiguously so the whole block is
    // filtered in ONE pass over its sign rows (the hardware PFU tests
    // every in-flight query against a key word as it streams by; the
    // multi-query kernel is the software twin of that dataflow).
    const size_t wpr = keys.wordsPerRow();
    std::vector<uint64_t> q_words(query_signs.size() * wpr);
    for (size_t q = 0; q < query_signs.size(); ++q) {
        LS_ASSERT(query_signs[q].dim() == keys.dim(),
                  "PFU query/key dim mismatch");
        std::copy(query_signs[q].words().begin(),
                  query_signs[q].words().end(),
                  q_words.begin() + q * wpr);
    }
    std::vector<Bitmap128> bitmaps(query_signs.size());
    filterBlock(q_words.data(), wpr,
                static_cast<uint32_t>(query_signs.size()), keys, begin,
                num_keys, threshold, bitmaps.data());
    return bitmaps;
}

void
Pfu::filterBlock(const uint64_t *query_words, size_t words_per_query,
                 uint32_t num_queries, const SignMatrix &keys, size_t begin,
                 uint32_t num_keys, int threshold, Bitmap128 *bitmaps)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(num_keys <= kBlockKeys, "PFU block holds at most 128 keys");
    LS_ASSERT(num_queries >= 1 && num_queries <= kMaxQueries,
              "PFU supports 1..16 queries per offload, got ", num_queries);
    LS_ASSERT(words_per_query == keys.wordsPerRow(),
              "PFU packed query width ", words_per_query,
              " != sign-matrix row width ", keys.wordsPerRow());

    // One streaming pass over the block's sign rows serves the whole
    // query group (concordanceBitmapMulti), instead of re-reading the
    // block once per query.
    uint64_t words[2 * kMaxQueries];
    concordanceBitmapMulti(query_words, num_queries, keys, begin, num_keys,
                           threshold, words);
    for (uint32_t q = 0; q < num_queries; ++q)
        bitmaps[q] = Bitmap128::fromWords(words[q * 2], words[q * 2 + 1]);
}

Tick
Pfu::bitmapGenTime(uint32_t head_dim, uint32_t num_queries)
{
    // d cycles at 1.25 ns per query (§8.2 RTL synthesis figure).
    return fromNanoseconds(1.25 * head_dim * num_queries);
}

} // namespace longsight

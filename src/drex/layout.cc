#include "drex/layout.hh"

#include "util/logging.hh"

namespace longsight {

DataLayout::DataLayout(const DrexGeometry &geometry,
                       const LpddrTimings &timings, uint32_t num_kv_heads,
                       uint32_t num_layers, uint32_t head_dim)
    : geometry_(geometry), timings_(timings), numKvHeads_(num_kv_heads),
      numLayers_(num_layers), headDim_(head_dim)
{
    LS_ASSERT(head_dim % 8 == 0, "head dim must be byte-aligned in signs");
    LS_ASSERT(num_kv_heads > 0 && num_layers > 0, "degenerate model shape");
}

uint32_t
DataLayout::keysPerGroup() const
{
    return kKeysPerBlock * geometry_.channelsPerPackage;
}

uint64_t
DataLayout::maxTokensPerSlice() const
{
    // One group per bank across all banks: 1024 x 128 = 131,072 (§7.3.3).
    return static_cast<uint64_t>(keysPerGroup()) *
        geometry_.banksPerChannel;
}

uint32_t
DataLayout::packageFor(uint32_t user, uint32_t kv_head) const
{
    LS_ASSERT(kv_head < numKvHeads_, "kv head out of range");
    return (kv_head + user) % geometry_.numPackages;
}

uint32_t
DataLayout::signBytesPerBlock() const
{
    // Bit-transposed: headDim columns x 128 bits = 16 bytes each.
    return kKeysPerBlock / 8 * headDim_;
}

uint32_t
DataLayout::signRowsPerGroup() const
{
    return (signBytesPerBlock() + timings_.rowBytes - 1) /
        timings_.rowBytes;
}

uint32_t
DataLayout::keyRowsPerGroup() const
{
    // The group's keys are striped over every channel: each channel's
    // bank stores keysPerGroup * keyBytes / channels bytes.
    const uint32_t bytes_per_channel =
        keysPerGroup() * keyBytes() / geometry_.channelsPerPackage;
    return (bytes_per_channel + timings_.rowBytes - 1) / timings_.rowBytes;
}

uint32_t
DataLayout::rowsPerLayerGroup() const
{
    return signRowsPerGroup() + keyRowsPerGroup() + valueRowsPerGroup();
}

TokenPlace
DataLayout::place(uint32_t user, uint32_t layer, uint32_t kv_head,
                  uint64_t token) const
{
    LS_ASSERT(layer < numLayers_, "layer out of range");
    const uint64_t per_slice = maxTokensPerSlice();
    // Tokens past one slice spill into the next partition segment; the
    // segment repeats the same geometry with a row offset.
    const uint64_t segment = token / per_slice;
    const uint64_t in_slice = token % per_slice;

    TokenPlace p;
    p.package = packageFor(user, kv_head);
    p.group = static_cast<uint32_t>(in_slice / keysPerGroup());
    p.bank = p.group % geometry_.banksPerChannel;
    const uint32_t in_group =
        static_cast<uint32_t>(in_slice % keysPerGroup());
    p.signChannel = in_group / kKeysPerBlock;
    p.indexInBlock = in_group % kKeysPerBlock;

    // Row addressing: each (segment, layer) stacks rowsPerLayerGroup
    // rows per bank. Groups share their bank with no other group of
    // the same (segment, layer), so the base is purely layer-indexed.
    const uint64_t layer_base =
        (segment * numLayers_ + layer) *
        static_cast<uint64_t>(rowsPerLayerGroup());
    p.signRow = layer_base;
    p.keyRow = layer_base + signRowsPerGroup();
    p.valueRow = p.keyRow + keyRowsPerGroup();

    LS_ASSERT(p.valueRow + valueRowsPerGroup() <= timings_.rowsPerBank(),
              "context overflows bank rows: token ", token, " layer ",
              layer);
    return p;
}

uint32_t
DataLayout::packagesForContext(uint64_t context_len) const
{
    const uint64_t per_slice = maxTokensPerSlice();
    const uint64_t slices = (context_len + per_slice - 1) / per_slice;
    return static_cast<uint32_t>(numKvHeads_ * slices);
}

uint64_t
DataLayout::bytesPerToken() const
{
    // Per layer per KV head: full-precision key + value + sign bits.
    const uint64_t per_head = 2ULL * keyBytes() + headDim_ / 8;
    return per_head * numKvHeads_ * numLayers_;
}

DrexAddress
DataLayout::decodeAddress(uint64_t physical) const
{
    DrexAddress a;
    a.column = static_cast<uint32_t>(physical % timings_.rowBytes);
    physical /= timings_.rowBytes;
    a.row = physical % timings_.rowsPerBank();
    physical /= timings_.rowsPerBank();
    a.bank = static_cast<uint32_t>(physical % geometry_.banksPerChannel);
    physical /= geometry_.banksPerChannel;
    a.channel =
        static_cast<uint32_t>(physical % geometry_.channelsPerPackage);
    physical /= geometry_.channelsPerPackage;
    a.package = static_cast<uint32_t>(physical);
    LS_ASSERT(a.package < geometry_.numPackages,
              "physical address beyond device capacity");
    return a;
}

uint64_t
DataLayout::encodeAddress(const DrexAddress &a) const
{
    uint64_t physical = a.package;
    physical = physical * geometry_.channelsPerPackage + a.channel;
    physical = physical * geometry_.banksPerChannel + a.bank;
    physical = physical * timings_.rowsPerBank() + a.row;
    physical = physical * timings_.rowBytes + a.column;
    return physical;
}

} // namespace longsight

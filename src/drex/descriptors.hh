/**
 * @file
 * Wire formats of the §7.3.1 MMIO objects exchanged between GPU and
 * DCC: the Request Descriptor (UID, layer, query vectors) the GPU
 * pushes into the Request Queue, and the Response Descriptor sizing
 * (up to 1024 x H top keys/values plus scores) the DCC writes into a
 * Response Buffer. Serialization is little-endian and byte-exact so
 * the CXL models can charge real payload sizes and tests can
 * round-trip the formats.
 */

#ifndef LONGSIGHT_DREX_DESCRIPTORS_HH
#define LONGSIGHT_DREX_DESCRIPTORS_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace longsight {

/**
 * The request descriptor the GPU writes to the DCC Request Queue.
 */
struct RequestDescriptor
{
    uint32_t uid = 0;
    uint32_t layer = 0;
    uint32_t k = 1024;
    uint32_t numQueryHeads = 0;
    uint32_t headDim = 0;
    /** Per-KV-head SCF thresholds. */
    std::vector<int32_t> thresholds;
    /** numQueryHeads x headDim BF16-rounded query payload. */
    Matrix queries;

    /** Serialized byte size (header + thresholds + BF16 queries). */
    uint64_t byteSize() const;

    /** Serialize to bytes (queries rounded to BF16 as on the wire). */
    std::vector<uint8_t> serialize() const;

    /** Parse a serialized descriptor; dies on malformed input. */
    static RequestDescriptor deserialize(const std::vector<uint8_t> &bytes);

    bool operator==(const RequestDescriptor &o) const;
};

/**
 * Sizing of the Response Descriptor (§7.3.1): a list of up to
 * 1024 x H top keys and values. Entries carry a 32-bit token ID, a
 * 32-bit score, and the BF16 value vector.
 */
struct ResponseDescriptorLayout
{
    uint32_t k = 1024;
    uint32_t numKvHeads = 8;
    uint32_t headDim = 128;

    /** Bytes per (id, score, value-vector) entry. */
    uint64_t entryBytes() const { return 4 + 4 + 2ULL * headDim; }

    /** Maximum response payload for one request. */
    uint64_t maxBytes() const
    {
        return entryBytes() * k * numKvHeads;
    }
};

/** Round a float to BF16 precision (truncate mantissa to 8 bits). */
float toBf16(float v);

} // namespace longsight

#endif // LONGSIGHT_DREX_DESCRIPTORS_HH

/**
 * @file
 * LongSight's logical-to-physical data mapping in DReX (§7.3):
 *
 *  - *Key Blocks*: 128 keys per bank. A group of Key Blocks spans all
 *    8 channels of a package, so groups hold 1024 keys. The Key Sign
 *    Object of a block is bit-transposed — each DRAM column holds one
 *    dimension across all 128 keys — and must sit entirely inside one
 *    bank so the bank's PFU can filter it.
 *  - Full-precision Key/Value Objects are striped across all 8
 *    channels of the package so NMA fetches use the full package
 *    bandwidth.
 *  - *Context Slices*: the key groups of one (user, layer, head),
 *    up to 128 banks x 1024 keys = 131,072 keys per slice.
 *  - *Multi-Layer Context Slices*: a head's slices for all layers,
 *    stacked in the same package (layers execute sequentially).
 *  - *User Partitions*: one Multi-Layer Context Slice per KV head,
 *    each in a different package (head-level parallelism — with 8 KV
 *    heads and 8 packages, one head per package).
 *
 * The address math here is deterministic (§7.3.2: contiguous physical
 * addresses map to columns, then rows, banks, channels, packages), so
 * the NMA can launch PFUs across banks without a translation table.
 */

#ifndef LONGSIGHT_DREX_LAYOUT_HH
#define LONGSIGHT_DREX_LAYOUT_HH

#include <cstdint>

#include "dram/lpddr_config.hh"

namespace longsight {

/**
 * Physical coordinates of a byte inside DReX.
 */
struct DrexAddress
{
    uint32_t package = 0;
    uint32_t channel = 0;
    uint32_t bank = 0;
    uint64_t row = 0;
    uint32_t column = 0; //!< byte offset within the row

    bool operator==(const DrexAddress &o) const = default;
};

/**
 * Placement of one token's key data within its package.
 */
struct TokenPlace
{
    uint32_t package = 0;    //!< package holding this head's slice
    uint32_t bank = 0;       //!< bank index (same in every channel)
    uint32_t signChannel = 0; //!< channel whose bank holds the sign block
    uint32_t indexInBlock = 0; //!< 0..127 position within the key block
    uint32_t group = 0;      //!< 1024-key group index within the slice
    uint64_t signRow = 0;    //!< row of the Key Sign Object
    uint64_t keyRow = 0;     //!< first row of the striped Key Object
    uint64_t valueRow = 0;   //!< first row of the striped Value Object
};

/**
 * Deterministic data layout for a model shape on a DReX device.
 */
class DataLayout
{
  public:
    /** Keys per PFU block (fixed by the PFU datapath, §7.1). */
    static constexpr uint32_t kKeysPerBlock = 128;

    DataLayout(const DrexGeometry &geometry, const LpddrTimings &timings,
               uint32_t num_kv_heads, uint32_t num_layers,
               uint32_t head_dim);

    const DrexGeometry &geometry() const { return geometry_; }
    const LpddrTimings &timings() const { return timings_; }
    uint32_t headDim() const { return headDim_; }

    /** Keys per group of Key Blocks (128 x channels). */
    uint32_t keysPerGroup() const;

    /** Maximum keys in one Context Slice (group per bank x banks). */
    uint64_t maxTokensPerSlice() const;

    /**
     * Package assignment: heads stripe across packages; users rotate
     * the stripe so multi-tenant load spreads (§7.3.3 Partition
     * Mapping).
     */
    uint32_t packageFor(uint32_t user, uint32_t kv_head) const;

    /** Placement of a token's key/sign/value data. */
    TokenPlace place(uint32_t user, uint32_t layer, uint32_t kv_head,
                     uint64_t token) const;

    /** Rows one group consumes per bank for sign objects. */
    uint32_t signRowsPerGroup() const;

    /** Rows one group consumes per bank per channel for key objects. */
    uint32_t keyRowsPerGroup() const;

    /** Rows for value objects (same footprint as keys). */
    uint32_t valueRowsPerGroup() const { return keyRowsPerGroup(); }

    /** Total rows per bank one (layer, group) consumes. */
    uint32_t rowsPerLayerGroup() const;

    /** Sign-object bytes for a full 128-key block. */
    uint32_t signBytesPerBlock() const;

    /** Full-precision key bytes per key. */
    uint32_t keyBytes() const { return headDim_ * 2; }

    /**
     * Paper §7.3.3: packages required for one user's partition,
     * Packages = h_kv * ceil(L / maxTokensPerSlice).
     */
    uint32_t packagesForContext(uint64_t context_len) const;

    /** Device bytes per token including the sign-bit overhead. */
    uint64_t bytesPerToken() const;

    /**
     * Decode a flat DReX physical address (contiguous bytes map to
     * columns, then rows, banks, channels, packages — §7.3.2).
     */
    DrexAddress decodeAddress(uint64_t physical) const;

    /** Inverse of decodeAddress. */
    uint64_t encodeAddress(const DrexAddress &a) const;

  private:
    DrexGeometry geometry_;
    LpddrTimings timings_;
    uint32_t numKvHeads_;
    uint32_t numLayers_;
    uint32_t headDim_;
};

} // namespace longsight

#endif // LONGSIGHT_DREX_LAYOUT_HH

/**
 * @file
 * User Partition allocation (§7.3.3 "Partition Mapping"): DReX memory
 * is managed in Multi-Layer-Context-Slice slots — one slot holds one
 * KV head's keys/signs/values for all layers over up to 131,072
 * tokens, consuming rowsPerLayerGroup x numLayers rows in every bank
 * of one package. A user's partition takes numKvHeads slots per
 * 131K-token segment, spread across packages for head-level
 * parallelism (spatial multi-tenancy) and across segments for
 * temporal expansion. This manager performs the actual slot
 * accounting the capacity formulas approximate: admission control,
 * balanced placement, and reclamation.
 */

#ifndef LONGSIGHT_DREX_PARTITION_MANAGER_HH
#define LONGSIGHT_DREX_PARTITION_MANAGER_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "drex/layout.hh"
#include "util/annotations.hh"
#include "util/sync.hh"

namespace longsight {

/**
 * One allocated slice slot.
 */
struct SliceGrant
{
    uint32_t kvHead = 0;
    uint32_t segment = 0; //!< 131K-token span index within the context
    uint32_t package = 0;
    uint32_t slot = 0;    //!< row-group index within the package
};

/**
 * A user's full partition.
 */
struct UserPartition
{
    uint32_t user = 0;
    uint64_t contextLen = 0;
    std::vector<SliceGrant> grants;
};

/**
 * Slot-level allocator over a DReX device's packages.
 */
class PartitionManager
{
  public:
    PartitionManager(const DataLayout &layout, uint32_t num_kv_heads,
                     uint32_t num_layers);

    /** Slice slots one package can hold (row budget / slot rows). */
    uint32_t slotsPerPackage() const { return slotsPerPackage_; }

    /** KV heads per user partition (each pages independently). */
    uint32_t numKvHeads() const { return numKvHeads_; }

    /** Total slots across the device. */
    uint32_t totalSlots() const;

    /** Slots currently allocated. */
    uint32_t usedSlots() const { return usedSlots_; }

    double utilization() const
    {
        return totalSlots()
            ? static_cast<double>(usedSlots_) / totalSlots()
            : 0.0;
    }

    /** Slots a context of this length needs. */
    uint32_t slotsForContext(uint64_t context_len) const;

    /** Whether a new user at this context could be admitted now. */
    bool canAdmit(uint64_t context_len) const;

    // Block-granular admission (paged KV cache). The slot machinery
    // above carves DReX rows into 131K-token slices; a paged serving
    // stack instead reasons in KvBlockPool blocks of block_tokens
    // tokens each. These helpers translate the same row budget into
    // that currency so the batch scheduler's admission gate can ask
    // "do prompt + output fit the remaining blocks?" rather than
    // capping concurrent request count.

    /** Total device capacity in KV blocks of block_tokens tokens. */
    uint64_t blockBudget(uint32_t block_tokens) const;

    /** Blocks a context of this length occupies across all KV heads
     *  (each head pages its tokens independently). */
    uint64_t blocksForContext(uint64_t context_len,
                              uint32_t block_tokens) const;

    /** Whether a context fits beside blocks_in_use allocated blocks. */
    bool canAdmitBlocks(uint64_t blocks_in_use, uint64_t context_len,
                        uint32_t block_tokens) const;

    /**
     * Exact admission capacity: how many users of this context fit in
     * an empty device (the integer truth behind Fig. 7's user counts).
     */
    uint32_t maxUsersExact(uint64_t context_len) const;

    /**
     * Allocate a partition; placement prefers the least-loaded
     * package, breaking ties by rotating with (user + head) so heads
     * spread for parallelism. Returns nullopt when slots run out
     * (no partial allocations are retained).
     */
    std::optional<UserPartition> allocate(uint32_t user,
                                          uint64_t context_len);

    /** Release a user's partition (no-op for unknown users). */
    void release(uint32_t user);

    /** Per-package used-slot counts (for balance checks). */
    const std::vector<uint32_t> &packageLoad() const { return load_; }

    bool hasUser(uint32_t user) const { return users_.count(user) > 0; }

  private:
    const DataLayout &layout_;
    uint32_t numKvHeads_;
    uint32_t slotsPerPackage_;
    std::vector<uint32_t> load_;             //!< used slots per package
    std::vector<std::vector<bool>> slotUsed_; //!< [package][slot]
    std::map<uint32_t, UserPartition> users_;
    uint32_t usedSlots_ = 0;
};

/**
 * Running block-budget account over a fixed budget: the admission
 * currency the serving engine reserves against. PR 6's paged bench
 * tracked in-use blocks by hand next to its canAdmit lambda; this
 * class owns that arithmetic — reserve on admit, release on retire or
 * preemption — and keeps the peak on record so benches can assert the
 * budget was never exceeded. Construct from a PartitionManager to use
 * the device's real row budget and per-head paging, or standalone for
 * unit tests.
 *
 * Thread safety: the running account (inUse_, peak_) is guarded by an
 * internal mutex, so concurrent serving lanes can reserve/release
 * against one ledger. Note canReserve() followed by reserve() is not
 * atomic across the pair — admission paths that race must re-check via
 * reserve()'s budget assertion or serialize admissions externally.
 */
class BlockLedger
{
  public:
    /** Device-backed: budget and per-context block counts from pm. */
    BlockLedger(const PartitionManager &pm, uint32_t block_tokens);

    /** Standalone: explicit budget, ceil(tokens/block) * kv_heads. */
    BlockLedger(uint64_t budget_blocks, uint32_t block_tokens,
                uint32_t num_kv_heads = 1);

    /** Blocks a context of this many tokens occupies. */
    uint64_t blocksFor(uint64_t tokens) const;

    /**
     * Blocks a context needs BEYOND an adopted shared prefix. Only
     * full prefix blocks are shared — KvCache::publishPrefix truncates
     * the published prefix to a block boundary and a partial tail is
     * re-appended privately — so the private charge is blocksFor(
     * tokens) minus floor(shared_prefix_tokens / block) whole blocks
     * (per KV head). shared_prefix_tokens is clamped to tokens.
     */
    uint64_t privateBlocksFor(uint64_t tokens,
                              uint64_t shared_prefix_tokens) const;

    /** Whether a context fits beside the currently reserved blocks;
     *  the two-argument flavour charges only the private tail. */
    bool canReserve(uint64_t tokens) const;
    bool canReserve(uint64_t tokens, uint64_t shared_prefix_tokens) const;

    /** Reserve a context's blocks (callers gate with canReserve).
     *  Prefix-aware reserve and release must be called with the SAME
     *  shared_prefix_tokens so the account stays symmetric. */
    void reserve(uint64_t tokens);
    void reserve(uint64_t tokens, uint64_t shared_prefix_tokens);

    /** Return a context's blocks to the budget. */
    void release(uint64_t tokens);
    void release(uint64_t tokens, uint64_t shared_prefix_tokens);

    uint64_t budget() const { return budget_; }
    uint64_t inUse() const
    {
        MutexLock lock(mu_);
        return inUse_;
    }
    uint64_t peakInUse() const
    {
        MutexLock lock(mu_);
        return peak_;
    }
    uint64_t freeBlocks() const
    {
        MutexLock lock(mu_);
        return budget_ - inUse_;
    }

  private:
    const PartitionManager *pm_ = nullptr; //!< null when standalone
    uint32_t blockTokens_;
    uint32_t numKvHeads_;
    uint64_t budget_;
    mutable Mutex mu_;
    uint64_t inUse_ LS_GUARDED_BY(mu_) = 0;
    uint64_t peak_ LS_GUARDED_BY(mu_) = 0;
};

} // namespace longsight

#endif // LONGSIGHT_DREX_PARTITION_MANAGER_HH

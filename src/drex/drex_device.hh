/**
 * @file
 * The complete DReX device (§7, Figure 5): eight PIM-enabled LPDDR5X
 * packages (each with a per-bank PFU array and one NMA) fronted by
 * the extended DCC. The device supports two operating modes:
 *
 *  - *Functional*: the GPU-side system writes real keys/values into
 *    per-(user, layer, head) stores; offloads then produce top-k
 *    results bit-identical to the software LongSightAttn reference.
 *    Used by tests, examples, and the algorithm benches.
 *  - *Timing-only*: no data is stored; survivor counts follow a
 *    modelled filter fraction (the paper's measured 20x average,
 *    §8.2). Used for million-token performance sweeps.
 *
 * Power/area constants from §9.4 are exposed for the power bench.
 */

#ifndef LONGSIGHT_DREX_DREX_DEVICE_HH
#define LONGSIGHT_DREX_DREX_DEVICE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/kv_cache.hh"
#include "dram/package.hh"
#include "drex/dcc.hh"
#include "drex/layout.hh"
#include "drex/nma.hh"

namespace longsight {

/**
 * Top-level DReX configuration.
 */
struct DrexConfig
{
    DrexGeometry geometry;
    LpddrTimings timings;
    NmaConfig nma;
    DccConfig dcc;
    uint32_t numKvHeads = 8;
    uint32_t numLayers = 32;
    uint32_t headDim = 128;
};

/**
 * §9.4 power and area figures (per component).
 */
struct DrexPowerArea
{
    double packagePeakWatts = 18.7;  //!< per LPDDR5X package
    double nmaPeakWatts = 1.072;     //!< per NMA (16 nm)
    double nmaAreaMm2 = 15.1;        //!< per NMA
    double pfuDieAreaOverhead = 0.067; //!< fraction of DRAM die area

    /** Total device peak power: 8 packages + 8 NMAs ≈ 158.2 W. */
    double totalPeakWatts(const DrexGeometry &g) const
    {
        return g.numPackages * (packagePeakWatts + nmaPeakWatts);
    }
};

/**
 * The compute-enabled CXL memory expander.
 */
class DrexDevice
{
  public:
    explicit DrexDevice(const DrexConfig &cfg);

    const DrexConfig &config() const { return cfg_; }
    const DataLayout &layout() const { return layout_; }
    Dcc &dcc() { return *dcc_; }
    DramPackage &package(uint32_t i);
    Nma &nma(uint32_t i);

    /** Total LPDDR capacity in bytes (512 GB in Table 2). */
    uint64_t capacityBytes() const;

    /**
     * Max concurrent users whose full sparse context fits, including
     * the sign-bit storage overhead (the '*' footnote of Fig. 7).
     */
    uint32_t maxUsers(uint64_t context_len) const;

    // --- Functional-mode context storage -----------------------------

    /**
     * Store (append) keys/values for (user, layer, head); models the
     * GPU's bulk Key/Key-Sign/Value Object writes. Returns the store
     * used, so callers can install ITQ rotations. Safe to call
     * concurrently for distinct (user, layer, head) keys — only the
     * store lookup serializes; the bulk copy runs outside the lock.
     */
    KvCache &writeContext(uint32_t user, uint32_t layer, uint32_t kv_head,
                          const Matrix &keys, const Matrix &values);

    /** Lookup a stored context (asserts it exists). */
    KvCache &context(uint32_t user, uint32_t layer, uint32_t kv_head);
    bool hasContext(uint32_t user, uint32_t layer, uint32_t kv_head) const;

    /**
     * Charge the DRAM timing of writing `num_tokens` tokens'
     * Key Sign / Key / Value Objects for (user, layer, head),
     * starting at token index `first_token` (§6 bulk updates; happens
     * off the decode critical path). Returns the completion tick.
     */
    Tick chargeContextWrite(Tick start, uint32_t user, uint32_t layer,
                            uint32_t kv_head, uint64_t first_token,
                            uint64_t num_tokens);

    // --- Request path -------------------------------------------------

    /** Forward to the DCC queue. */
    void submit(AttentionRequest request) { dcc_->submit(std::move(request)); }

    /** Drain the DCC queue. */
    std::vector<AttentionResponse> processAll() { return dcc_->processAll(); }

    static DrexPowerArea powerArea() { return DrexPowerArea{}; }

  private:
    using ContextKey = std::tuple<uint32_t, uint32_t, uint32_t>;

    DrexConfig cfg_;
    DataLayout layout_;
    std::vector<DramPackage> packages_;
    std::vector<Nma> nmas_;
    std::unique_ptr<Dcc> dcc_;
    // Guards contexts_ map structure (not the KvCaches inside it;
    // node references stay stable across inserts).
    mutable std::mutex contextsMu_;
    std::map<ContextKey, KvCache> contexts_;
};

} // namespace longsight

#endif // LONGSIGHT_DREX_DREX_DEVICE_HH

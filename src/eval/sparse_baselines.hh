/**
 * @file
 * Software sparse-attention baselines the paper positions LongSight
 * against (§3.1, §4): a clustering-based ANNS index (Squeezed-
 * Attention-style: score centroids, scan the members of the top
 * probed clusters) and a Reformer-style LSH index (random-hyperplane
 * buckets, scan colliding buckets across tables). Both expose the
 * same candidate-generation interface as SCF so the comparison bench
 * can hold the candidate budget fixed and compare retained softmax
 * mass — plus the two costs the paper argues make ANNS a poor fit for
 * the KV cache: index construction and per-token update work.
 */

#ifndef LONGSIGHT_EVAL_SPARSE_BASELINES_HH
#define LONGSIGHT_EVAL_SPARSE_BASELINES_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace longsight {

/**
 * Lloyd's k-means over key vectors with inverted cluster lists.
 */
class KMeansIndex
{
  public:
    /**
     * Build over `keys` (token-major).
     *
     * @param num_clusters centroid count
     * @param iterations Lloyd iterations
     */
    KMeansIndex(const Matrix &keys, uint32_t num_clusters, int iterations,
                Rng &rng);

    /** Tokens in the `probes` clusters whose centroids score highest. */
    std::vector<uint32_t> candidates(const float *q,
                                     uint32_t probes) const;

    /** Distance computations spent building the index. */
    uint64_t buildDistanceComputations() const { return buildWork_; }

    /**
     * Append one key (decode-time update): assign to the nearest
     * centroid. Returns the distance computations this update cost —
     * the per-token maintenance the paper calls "costly and
     * time-consuming" (§4).
     */
    uint64_t addKey(const float *key, uint32_t token);

    uint32_t numClusters() const
    {
        return static_cast<uint32_t>(centroids_.rows());
    }

  private:
    uint32_t nearestCentroid(const float *v) const;

    uint32_t dim_;
    Matrix centroids_;
    std::vector<std::vector<uint32_t>> members_;
    uint64_t buildWork_ = 0;
};

/**
 * Random-hyperplane LSH with multiple tables (Reformer-style
 * bucketing; §3.1 notes its multi-round storage/recompute overheads).
 */
class LshIndex
{
  public:
    LshIndex(const Matrix &keys, uint32_t num_tables,
             uint32_t bits_per_table, Rng &rng);

    /** Union of the query's bucket across all tables (deduplicated). */
    std::vector<uint32_t> candidates(const float *q) const;

    /** Hash evaluations spent building. */
    uint64_t buildHashComputations() const { return buildWork_; }

    /** Append one key; returns hash evaluations spent. */
    uint64_t addKey(const float *key, uint32_t token);

  private:
    uint32_t hashOf(uint32_t table, const float *v) const;

    uint32_t dim_;
    uint32_t bits_;
    std::vector<Matrix> planes_; //!< per table: bits x dim
    std::vector<std::vector<std::vector<uint32_t>>> buckets_;
    uint64_t buildWork_ = 0;
};

} // namespace longsight

#endif // LONGSIGHT_EVAL_SPARSE_BASELINES_HH

#include "eval/sparse_baselines.hh"

#include <algorithm>

#include "tensor/linalg.hh"
#include "util/logging.hh"

namespace longsight {

KMeansIndex::KMeansIndex(const Matrix &keys, uint32_t num_clusters,
                         int iterations, Rng &rng)
    : dim_(static_cast<uint32_t>(keys.cols()))
{
    const size_t n = keys.rows();
    LS_ASSERT(num_clusters >= 1 && num_clusters <= n,
              "cluster count out of range");

    // Init: distinct random keys as centroids.
    const auto perm = rng.permutation(static_cast<uint32_t>(n));
    centroids_.resize(num_clusters, dim_);
    for (uint32_t c = 0; c < num_clusters; ++c)
        centroids_.setRow(c, keys.row(perm[c]));

    std::vector<uint32_t> assign(n, 0);
    for (int it = 0; it < iterations; ++it) {
        // Assign.
        for (size_t i = 0; i < n; ++i)
            assign[i] = nearestCentroid(keys.row(i));
        buildWork_ += n * num_clusters;
        // Update.
        Matrix sums(num_clusters, dim_);
        std::vector<uint32_t> counts(num_clusters, 0);
        for (size_t i = 0; i < n; ++i) {
            float *row = sums.row(assign[i]);
            for (uint32_t d = 0; d < dim_; ++d)
                row[d] += keys(i, d);
            ++counts[assign[i]];
        }
        for (uint32_t c = 0; c < num_clusters; ++c) {
            if (counts[c] == 0)
                continue; // keep the old centroid
            for (uint32_t d = 0; d < dim_; ++d)
                centroids_(c, d) = sums(c, d) / counts[c];
        }
    }

    members_.assign(num_clusters, {});
    for (size_t i = 0; i < n; ++i) {
        assign[i] = nearestCentroid(keys.row(i));
        members_[assign[i]].push_back(static_cast<uint32_t>(i));
    }
    buildWork_ += n * num_clusters;
}

uint32_t
KMeansIndex::nearestCentroid(const float *v) const
{
    // Dot-product similarity, matching the attention metric.
    uint32_t best = 0;
    float best_score = dot(v, centroids_.row(0), dim_);
    for (size_t c = 1; c < centroids_.rows(); ++c) {
        const float s = dot(v, centroids_.row(c), dim_);
        if (s > best_score) {
            best_score = s;
            best = static_cast<uint32_t>(c);
        }
    }
    return best;
}

std::vector<uint32_t>
KMeansIndex::candidates(const float *q, uint32_t probes) const
{
    probes = std::min<uint32_t>(probes, numClusters());
    std::vector<std::pair<float, uint32_t>> scored(numClusters());
    for (uint32_t c = 0; c < numClusters(); ++c)
        scored[c] = {dot(q, centroids_.row(c), dim_), c};
    std::partial_sort(scored.begin(), scored.begin() + probes,
                      scored.end(), std::greater<>());
    std::vector<uint32_t> out;
    for (uint32_t p = 0; p < probes; ++p)
        for (uint32_t tok : members_[scored[p].second])
            out.push_back(tok);
    std::sort(out.begin(), out.end());
    return out;
}

uint64_t
KMeansIndex::addKey(const float *key, uint32_t token)
{
    const uint32_t c = nearestCentroid(key);
    members_[c].push_back(token);
    return numClusters(); // one distance per centroid
}

LshIndex::LshIndex(const Matrix &keys, uint32_t num_tables,
                   uint32_t bits_per_table, Rng &rng)
    : dim_(static_cast<uint32_t>(keys.cols())), bits_(bits_per_table)
{
    LS_ASSERT(bits_per_table >= 1 && bits_per_table <= 20,
              "bits per table out of range");
    planes_.reserve(num_tables);
    buckets_.assign(num_tables, {});
    for (uint32_t t = 0; t < num_tables; ++t) {
        planes_.emplace_back(bits_, dim_,
                             rng.gaussianVec(bits_ * dim_));
        buckets_[t].assign(1ULL << bits_, {});
    }
    for (size_t i = 0; i < keys.rows(); ++i) {
        for (uint32_t t = 0; t < num_tables; ++t) {
            const uint32_t h = hashOf(t, keys.row(i));
            buckets_[t][h].push_back(static_cast<uint32_t>(i));
        }
        buildWork_ += num_tables;
    }
}

uint32_t
LshIndex::hashOf(uint32_t table, const float *v) const
{
    uint32_t h = 0;
    for (uint32_t b = 0; b < bits_; ++b) {
        if (dot(v, planes_[table].row(b), dim_) >= 0.0f)
            h |= 1u << b;
    }
    return h;
}

std::vector<uint32_t>
LshIndex::candidates(const float *q) const
{
    std::vector<uint32_t> out;
    for (uint32_t t = 0; t < planes_.size(); ++t) {
        const auto &bucket = buckets_[t][hashOf(t, q)];
        out.insert(out.end(), bucket.begin(), bucket.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

uint64_t
LshIndex::addKey(const float *key, uint32_t token)
{
    for (uint32_t t = 0; t < planes_.size(); ++t)
        buckets_[t][hashOf(t, key)].push_back(token);
    return planes_.size();
}

} // namespace longsight

#include "eval/algo_eval.hh"

#include <algorithm>
#include <cmath>

#include "core/attention.hh"
#include "core/itq.hh"
#include "core/topk.hh"
#include "tensor/kernels.hh"
#include "tensor/quantized.hh"
#include "tensor/linalg.hh"
#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "tensor/softmax.hh"
#include "util/logging.hh"

namespace longsight {

AlgoEvaluator::AlgoEvaluator(const WorkloadConfig &cfg, uint32_t num_heads,
                             size_t context, uint32_t queries_per_head,
                             uint64_t seed, int itq_iterations)
    : numHeads_(num_heads), headDim_(cfg.headDim), context_(context)
{
    LS_ASSERT(context > 0 && num_heads > 0 && queries_per_head > 0,
              "degenerate evaluator shape");
    auto heads = makeHeadWorkloads(cfg, num_heads, seed);
    Rng itq_rng(seed ^ 0x17ab'99d1ULL);

    samples_.resize(num_heads);
    for (uint32_t h = 0; h < num_heads; ++h) {
        HeadWorkload &wl = heads[h];
        wl.generate(context);
        const Matrix &keys = wl.keys();
        const float scale = wl.attentionScale();

        // Per-key sign bits in raw and (optionally) ITQ space, packed
        // contiguously for the batch concordance sweep.
        const SignMatrix raw_signs =
            SignMatrix::pack(keys.data(), context, headDim_);
        Matrix rotation;
        SignMatrix itq_signs(headDim_);
        if (itq_iterations > 0) {
            // §5.4: train on ~1K post-RoPE keys and queries, sampled
            // uniformly over the context.
            const size_t nk = std::min<size_t>(context, 896);
            const size_t nq = 128;
            Matrix train(nk + nq, headDim_);
            for (size_t i = 0; i < nk; ++i)
                train.setRow(i, keys.row(i * context / nk));
            for (size_t i = 0; i < nq; ++i) {
                const auto q = wl.drawQuery();
                train.setRow(nk + i, q.data());
            }
            rotation = trainItqRotation(train, itq_iterations, itq_rng);
            itq_signs.reserveRows(context);
            for (size_t i = 0; i < context; ++i) {
                const auto rk = gemvT(rotation, keys.rowVec(i));
                itq_signs.appendRow(rk.data());
            }
        }

        // INT8 key arena (symmetric per-row quantization — the same
        // scheme as KvCache::enableKeyQuantization) and fixed-block
        // mean-key centroids, for the estimation-family filters.
        std::vector<int8_t> kq(context * headDim_);
        std::vector<float> kscale(context);
        for (size_t i = 0; i < context; ++i)
            quantizeInt8Into(keys.row(i), headDim_,
                             kq.data() + i * headDim_, &kscale[i]);
        const size_t bt = kCentroidBlockTokens;
        const size_t nblocks = (context + bt - 1) / bt;
        Matrix centroids(nblocks, headDim_);
        for (size_t b = 0; b < nblocks; ++b) {
            const size_t t0 = b * bt;
            const size_t t1 = std::min(context, t0 + bt);
            std::vector<double> acc(headDim_, 0.0);
            for (size_t t = t0; t < t1; ++t)
                for (size_t d = 0; d < headDim_; ++d)
                    acc[d] += static_cast<double>(keys.row(t)[d]);
            std::vector<float> c(headDim_);
            for (size_t d = 0; d < headDim_; ++d)
                c[d] = static_cast<float>(
                    acc[d] / static_cast<double>(t1 - t0));
            centroids.setRow(b, c.data());
        }

        samples_[h].resize(queries_per_head);
        for (uint32_t qi = 0; qi < queries_per_head; ++qi) {
            Sample &s = samples_[h][qi];
            const auto q = wl.drawQuery();
            s.scores = attentionScores(q.data(), keys, 0, context, scale);
            s.probs = s.scores;
            softmaxInPlace(s.probs);
            s.probOrder.resize(context);
            for (size_t i = 0; i < context; ++i)
                s.probOrder[i] = static_cast<uint32_t>(i);
            std::sort(s.probOrder.begin(), s.probOrder.end(),
                      [&s](uint32_t a, uint32_t b) {
                          return s.probs[a] > s.probs[b] ||
                              (s.probs[a] == s.probs[b] && a < b);
                      });

            const SignBits q_raw(q.data(), headDim_);
            s.concordRaw.resize(context);
            batchConcordance(q_raw, raw_signs, 0, context,
                             s.concordRaw.data());

            if (itq_iterations > 0) {
                const auto qr = gemvT(rotation, q);
                const SignBits q_itq(qr.data(), headDim_);
                s.concordItq.resize(context);
                batchConcordance(q_itq, itq_signs, 0, context,
                                 s.concordItq.data());
            }

            // INT8 score estimates: exact integer dot through the
            // dispatch layer, float estimate under the shared
            // batchInt8ScoreSelect contract (one fixed multiply
            // order), scaled like s.scores so the two are comparable.
            std::vector<int8_t> q8(headDim_);
            float q_scale = 0.0f;
            quantizeInt8Into(q.data(), headDim_, q8.data(), &q_scale);
            std::vector<int32_t> idot(context);
            batchInt8DotRange(q8.data(), kq.data(), headDim_, 0, context,
                              idot.data());
            s.estInt8.resize(context);
            const float qp = q_scale * scale;
            for (size_t i = 0; i < context; ++i)
                s.estInt8[i] = static_cast<float>(idot[i]) *
                    (qp * kscale[i]);

            s.blockScore.resize(nblocks);
            for (size_t b = 0; b < nblocks; ++b) {
                double acc = 0.0;
                const float *c = centroids.row(b);
                for (size_t d = 0; d < headDim_; ++d)
                    acc += static_cast<double>(q[d]) *
                        static_cast<double>(c[d]);
                s.blockScore[b] = static_cast<float>(acc) * scale;
            }
        }
    }
}

EvalResult
AlgoEvaluator::evaluate(const EvalConfig &cfg) const
{
    EvalResult out;
    out.headFilterRatios.resize(numHeads_);

    double lost_total = 0.0;
    double recall_total = 0.0;
    size_t evals = 0;
    size_t recall_evals = 0;

    // Reused drain span: drainSorted heapsorts into this in place, so
    // after the first sample at each size no allocation happens here.
    std::vector<ScoredIndex> selected;

    for (uint32_t h = 0; h < numHeads_; ++h) {
        FilterStats head_stats;
        const int threshold =
            cfg.thresholds.empty() ? 0 : cfg.thresholds[h];
        for (const Sample &s : samples_[h]) {
            const size_t n = s.probs.size();
            const size_t sinks = std::min<size_t>(cfg.sinkTokens, n);
            size_t win_start =
                n > cfg.windowSize ? n - cfg.windowSize : 0;
            win_start = std::max(win_start, sinks);

            double retained = 0.0;
            for (size_t i = 0; i < sinks; ++i)
                retained += s.probs[i];
            for (size_t i = win_start; i < n; ++i)
                retained += s.probs[i];

            const size_t region = win_start - sinks;
            if (region > 0) {
                TopK ranker(cfg.topK);
                uint64_t survivors = 0;
                if (cfg.filter == FilterKind::Int8) {
                    // Estimation replaces the survivor scan: every
                    // region token is ranked by its INT8 estimate, and
                    // only the selections are retrieved at full
                    // precision — survivors therefore equals the
                    // selection count (set after the drain).
                    for (size_t i = sinks; i < win_start; ++i)
                        ranker.push(s.estInt8[i],
                                    static_cast<uint32_t>(i));
                } else if (cfg.filter == FilterKind::Centroid) {
                    // Rank the fixed 128-token blocks overlapping the
                    // region, descend into the best keepFraction, and
                    // exact-score the candidates inside them.
                    const size_t bt = kCentroidBlockTokens;
                    const size_t b0 = sinks / bt;
                    const size_t b1 = (win_start + bt - 1) / bt;
                    const size_t nb = b1 - b0;
                    const size_t keep = std::min(
                        nb, std::max<size_t>(
                                1, static_cast<size_t>(std::ceil(
                                       cfg.centroidKeepFraction *
                                       static_cast<double>(nb)))));
                    std::vector<ScoredIndex> bh(keep);
                    size_t hs = 0;
                    for (size_t b = b0; b < b1; ++b)
                        hs = topk_heap::push(
                            bh.data(), hs, keep,
                            ScoredIndex{s.blockScore[b],
                                        static_cast<uint32_t>(b)});
                    for (size_t j = 0; j < hs; ++j) {
                        const size_t b = bh[j].index;
                        const size_t t0 = std::max(sinks, b * bt);
                        const size_t t1 =
                            std::min(win_start, (b + 1) * bt);
                        for (size_t t = t0; t < t1; ++t) {
                            ++survivors;
                            ranker.push(s.scores[t],
                                        static_cast<uint32_t>(t));
                        }
                    }
                } else {
                    const auto &concord =
                        cfg.useItq && !s.concordItq.empty()
                        ? s.concordItq
                        : s.concordRaw;
                    // Survivors + bounded top-k in one pass.
                    for (size_t i = sinks; i < win_start; ++i) {
                        if (concord[i] >= threshold) {
                            ++survivors;
                            ranker.push(s.scores[i],
                                        static_cast<uint32_t>(i));
                        }
                    }
                }
                // Drain in place: heapsort into the reused span
                // instead of sortedResults' copy + full sort.
                selected.resize(ranker.size());
                const size_t nsel = ranker.drainSorted(selected.data());
                if (cfg.filter == FilterKind::Int8)
                    survivors = nsel;
                std::vector<uint32_t> picked;
                picked.reserve(nsel);
                for (size_t i = 0; i < nsel; ++i) {
                    retained += s.probs[selected[i].index];
                    picked.push_back(selected[i].index);
                }
                head_stats.record(region, survivors, nsel);

                // Recall: compare against the region's true top
                // |selected| tokens by dense probability.
                if (!picked.empty()) {
                    std::sort(picked.begin(), picked.end());
                    size_t truth_seen = 0, hits = 0;
                    for (uint32_t idx : s.probOrder) {
                        if (idx < sinks || idx >= win_start)
                            continue;
                        ++truth_seen;
                        hits += std::binary_search(picked.begin(),
                                                   picked.end(), idx);
                        if (truth_seen == picked.size())
                            break;
                    }
                    recall_total +=
                        static_cast<double>(hits) / picked.size();
                    ++recall_evals;
                }
            }
            lost_total += std::max(0.0, 1.0 - retained);
            ++evals;
        }
        out.headFilterRatios[h] = head_stats.filterRatio();
        out.stats.merge(head_stats);
    }

    out.lostMass = lost_total / static_cast<double>(evals);
    out.pplIncreasePct = 100.0 * (std::exp(out.lostMass) - 1.0);
    out.filterRatio = out.stats.filterRatio();
    out.sparsity = out.stats.sparsity();
    if (recall_evals > 0)
        out.recallAtK = recall_total / static_cast<double>(recall_evals);
    return out;
}

double
AlgoEvaluator::slidingWindowLostMass(uint32_t window, uint32_t sinks) const
{
    double lost = 0.0;
    size_t evals = 0;
    for (const auto &head : samples_) {
        for (const Sample &s : head) {
            const size_t n = s.probs.size();
            const size_t sink_n = std::min<size_t>(sinks, n);
            size_t win_start = n > window ? n - window : 0;
            win_start = std::max(win_start, sink_n);
            double retained = 0.0;
            for (size_t i = 0; i < sink_n; ++i)
                retained += s.probs[i];
            for (size_t i = win_start; i < n; ++i)
                retained += s.probs[i];
            lost += std::max(0.0, 1.0 - retained);
            ++evals;
        }
    }
    return lost / static_cast<double>(evals);
}

} // namespace longsight

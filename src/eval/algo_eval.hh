/**
 * @file
 * Fast quality-evaluation harness for the algorithm experiments
 * (Figures 3, 4, 10). For a fixed workload and query sample set it
 * precomputes, once per (head, query):
 *
 *  - the exact dense softmax probabilities over the whole context,
 *  - the raw attention scores, and
 *  - the sign-concordance of every key with the query, in both raw
 *    and ITQ-rotated sign space,
 *
 * after which *any* hybrid configuration (window W, top-k, sinks,
 * per-head thresholds, raw-vs-ITQ) is evaluated in O(context) per
 * query with no re-computation of attention. This is what makes the
 * paper's parameter sweeps (hundreds of configurations) cheap enough
 * to reproduce on one core.
 */

#ifndef LONGSIGHT_EVAL_ALGO_EVAL_HH
#define LONGSIGHT_EVAL_ALGO_EVAL_HH

#include <cstdint>
#include <vector>

#include "core/filter_backend.hh"
#include "core/filter_stats.hh"
#include "model/workload.hh"

namespace longsight {

/**
 * One hybrid-attention configuration to score.
 */
struct EvalConfig
{
    uint32_t windowSize = 1024;
    uint32_t topK = 1024;
    uint32_t sinkTokens = 16;
    std::vector<int> thresholds; //!< per head; empty = all zero
    bool useItq = false;

    /**
     * Candidate filter family for the sparse region. Scf gates by
     * sign concordance (thresholds/useItq apply); Int8 ranks every
     * region token by its INT8-quantized score estimate; Centroid
     * ranks fixed 128-token blocks (kCentroidBlockTokens) by mean-key
     * score and exact-scores the best centroidKeepFraction of them.
     */
    FilterKind filter = FilterKind::Scf;
    double centroidKeepFraction = 0.25;
};

/**
 * Quality/filtering outcome of a configuration.
 */
struct EvalResult
{
    double lostMass = 0.0;      //!< mean dense softmax mass dropped
    double pplIncreasePct = 0.0; //!< first-order perplexity proxy
    double filterRatio = 0.0;    //!< Fig-3 metric
    double sparsity = 0.0;
    /**
     * Mean top-k recall in the sparse region: of the region's truly
     * highest-probability tokens (as many as were selected), the
     * fraction the SCF -> top-k pipeline actually picked. 1.0 means
     * filtering never displaced a true winner.
     */
    double recallAtK = 1.0;
    FilterStats stats;
    std::vector<double> headFilterRatios;
};

/**
 * Precomputed evaluation corpus for one model shape at one context.
 */
class AlgoEvaluator
{
  public:
    /**
     * @param cfg workload statistics (headDim = model head dim)
     * @param num_heads KV heads to simulate (quality statistics
     *        converge quickly; benches use a subset of the model's 8)
     * @param context context length in tokens
     * @param queries_per_head evaluation queries per head
     * @param seed determinism root
     * @param itq_iterations ITQ training alternations (0 = skip ITQ)
     */
    AlgoEvaluator(const WorkloadConfig &cfg, uint32_t num_heads,
                  size_t context, uint32_t queries_per_head, uint64_t seed,
                  int itq_iterations = 20);

    /** Block granularity of the Centroid filter's precomputed block
     *  scores (the runtime backend's centroidBlockTokens default). */
    static constexpr size_t kCentroidBlockTokens = 128;

    size_t context() const { return context_; }
    uint32_t numHeads() const { return numHeads_; }
    uint32_t headDim() const { return headDim_; }

    /** Evaluate one configuration over the whole corpus. */
    EvalResult evaluate(const EvalConfig &cfg) const;

    /**
     * Mass of dense attention outside sinks+window (the quality gap a
     * pure sliding-window baseline cannot close), for a given W.
     */
    double slidingWindowLostMass(uint32_t window, uint32_t sinks) const;

  private:
    struct Sample
    {
        std::vector<float> probs;    //!< dense softmax, length n
        std::vector<float> scores;   //!< raw scores, length n
        std::vector<int> concordRaw; //!< sign concordance, raw space
        std::vector<int> concordItq; //!< sign concordance, ITQ space
        std::vector<uint32_t> probOrder; //!< indices by prob, desc
        std::vector<float> estInt8;  //!< INT8 q8 . k8 score estimates
        std::vector<float> blockScore; //!< per-128-block centroid score
    };

    uint32_t numHeads_;
    uint32_t headDim_;
    size_t context_;
    std::vector<std::vector<Sample>> samples_; //!< [head][query]
};

} // namespace longsight

#endif // LONGSIGHT_EVAL_ALGO_EVAL_HH
